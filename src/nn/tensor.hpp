// Minimal dense float tensor.
//
// Row-major contiguous storage with a dynamic shape; just enough for the
// attack network's needs (no views, no broadcasting — layers operate on
// explicit shapes). Keeping it small makes the backprop code easy to audit
// against the paper's equations.
//
// Buffer reuse: `resize_reuse` reshapes a tensor in place with grow-only
// capacity and NO clearing of reused storage — the activation-arena
// subsystem (nn/arena.hpp) uses it so the training/inference hot path
// performs zero heap allocations per query once warm. A tensor that has
// been through `resize_reuse` may hold more storage than `size()`
// elements; all accessors operate on the logical extent only.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace sma::nn {

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(std::vector<int> shape);

  static Tensor zeros(std::vector<int> shape) { return Tensor(std::move(shape)); }

  /// Gaussian init with the given standard deviation.
  static Tensor randn(std::vector<int> shape, util::Pcg32& rng, double stddev);

  const std::vector<int>& shape() const { return shape_; }
  int dim(int axis) const { return shape_.at(axis); }
  std::size_t size() const { return numel_; }
  bool empty() const { return numel_ == 0; }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  float& operator[](std::size_t i) { return data_[i]; }
  float operator[](std::size_t i) const { return data_[i]; }

  void fill(float value);
  /// Reinterpret the shape; total element count must match. The
  /// initializer-list overload exists so hot-path callers can reshape
  /// without constructing a temporary std::vector (which would allocate).
  void reshape(std::vector<int> shape);
  void reshape(std::initializer_list<int> shape);

  /// Reshape in place for buffer reuse. Capacity only ever grows (backing
  /// storage is retained across shrink-then-grow sequences) and reused
  /// storage is NOT cleared: after this call the contents of the logical
  /// extent are unspecified, and the caller must either fully overwrite
  /// every element before reading or zero explicitly (the arena's
  /// `Fill::kZero`). This no-stale-read contract is what lets the hot
  /// path skip both the per-call allocation and the per-call zero-fill of
  /// a freshly constructed tensor. Returns true when backing storage had
  /// to grow (a heap allocation happened) — the arena's alloc counter.
  bool resize_reuse(const std::vector<int>& shape);
  bool resize_reuse(std::initializer_list<int> shape);

  /// "[2, 3, 4]" for diagnostics.
  std::string shape_string() const;

  /// Bytes of backing storage currently held (>= size() * sizeof(float)
  /// after resize_reuse shrinks).
  std::size_t capacity_bytes() const { return data_.capacity() * sizeof(float); }

 private:
  bool ensure_numel(std::size_t n);

  std::vector<int> shape_;
  std::vector<float> data_;
  std::size_t numel_ = 0;  ///< logical element count; data_.size() >= numel_
};

/// Number of elements implied by a shape. Throws std::overflow_error when
/// the dimension product overflows std::size_t (a silent wrap would
/// under-allocate storage and turn later indexing into OOB writes).
std::size_t shape_size(const std::vector<int>& shape);
std::size_t shape_size(std::initializer_list<int> shape);

}  // namespace sma::nn
