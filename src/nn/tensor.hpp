// Minimal dense float tensor.
//
// Contiguous storage with a dynamic shape; just enough for the attack
// network's needs (no views, no broadcasting — layers operate on explicit
// shapes). Keeping it small makes the backprop code easy to audit against
// the paper's equations.
//
// Layout tag: a tensor's logical shape is decoupled from its storage
// order by an explicit `Layout` tag. `kRowMajor` is the default
// (last-axis-fastest, the seed's only layout). `kChannelMajor` is the
// blocked conv pipeline's native activation layout for 4-D tensors of
// logical shape [n, C, H, W]: storage is permuted to [C, n, H, W], i.e.
// the (img, c) plane lives at data + (c*n + img)*H*W instead of
// (img*C + c)*H*W. The tag changes only where bytes live, never what
// they mean — every consumer dispatches on `layout()` and reads the same
// values. Channel-major requires a rank-4 shape; in Debug builds a
// mismatched-layout reuse (or a reshape of a channel-major tensor, which
// would silently reinterpret permuted storage) throws std::logic_error.
//
// Buffer reuse: `resize_reuse` reshapes a tensor in place with grow-only
// capacity and NO clearing of reused storage — the activation-arena
// subsystem (nn/arena.hpp) uses it so the training/inference hot path
// performs zero heap allocations per query once warm. A tensor that has
// been through `resize_reuse` may hold more storage than `size()`
// elements; all accessors operate on the logical extent only.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace sma::nn {

/// Storage order of a tensor's backing buffer relative to its logical
/// shape. See the file comment for the exact channel-major permutation.
enum class Layout {
  kRowMajor,      ///< last-axis-fastest (NCHW for 4-D); the seed layout
  kChannelMajor,  ///< [n,C,H,W] stored as [C,n,H,W]; blocked conv native
};

/// True when the Debug-only layout contract checks are compiled in.
/// Tests use this to skip throw-expectations in Release builds.
constexpr bool layout_checks_enabled() {
#ifndef NDEBUG
  return true;
#else
  return false;
#endif
}

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(std::vector<int> shape);

  static Tensor zeros(std::vector<int> shape) { return Tensor(std::move(shape)); }

  /// Gaussian init with the given standard deviation.
  static Tensor randn(std::vector<int> shape, util::Pcg32& rng, double stddev);

  const std::vector<int>& shape() const { return shape_; }
  int dim(int axis) const { return shape_.at(axis); }
  std::size_t size() const { return numel_; }
  bool empty() const { return numel_ == 0; }

  /// Storage order of the backing buffer. Plain copies (copy ctor /
  /// assignment) propagate the tag with the data automatically.
  Layout layout() const { return layout_; }
  /// Retag the storage order without moving bytes. The caller asserts the
  /// buffer already IS in `layout` (e.g. a GEMM that wrote channel-major
  /// planes directly into the slot). Channel-major requires rank 4.
  void set_layout(Layout layout);

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  float& operator[](std::size_t i) { return data_[i]; }
  float operator[](std::size_t i) const { return data_[i]; }

  void fill(float value);
  /// Reinterpret the shape; total element count must match. The
  /// initializer-list overload exists so hot-path callers can reshape
  /// without constructing a temporary std::vector (which would allocate).
  void reshape(std::vector<int> shape);
  void reshape(std::initializer_list<int> shape);

  /// Reshape in place for buffer reuse. Capacity only ever grows (backing
  /// storage is retained across shrink-then-grow sequences) and reused
  /// storage is NOT cleared: after this call the contents of the logical
  /// extent are unspecified, and the caller must either fully overwrite
  /// every element before reading or zero explicitly (the arena's
  /// `Fill::kZero`). This no-stale-read contract is what lets the hot
  /// path skip both the per-call allocation and the per-call zero-fill of
  /// a freshly constructed tensor. Returns true when backing storage had
  /// to grow (a heap allocation happened) — the arena's alloc counter.
  ///
  /// The defaulted `layout` parameter tags the reused storage order;
  /// existing call sites compile unchanged and keep getting row-major.
  /// In Debug builds a channel-major reuse with a non-4-D shape throws
  /// std::logic_error (the permutation is only defined for [n,C,H,W]).
  bool resize_reuse(const std::vector<int>& shape,
                    Layout layout = Layout::kRowMajor);
  bool resize_reuse(std::initializer_list<int> shape,
                    Layout layout = Layout::kRowMajor);

  /// "[2, 3, 4]" for diagnostics.
  std::string shape_string() const;

  /// Bytes of backing storage currently held (>= size() * sizeof(float)
  /// after resize_reuse shrinks).
  std::size_t capacity_bytes() const { return data_.capacity() * sizeof(float); }

 private:
  bool ensure_numel(std::size_t n);

  std::vector<int> shape_;
  std::vector<float> data_;
  std::size_t numel_ = 0;  ///< logical element count; data_.size() >= numel_
  Layout layout_ = Layout::kRowMajor;
};

/// Copy `src` into `dst` with `dst` holding the same logical values under
/// `layout`. `dst` is resize_reuse'd to src's shape (grow-only, so a
/// preallocated dst makes this allocation-free — benches use it to time
/// the bare permutation). Same-layout copies degrade to one memcpy.
void copy_to_layout(const Tensor& src, Layout layout, Tensor& dst);

/// Value-returning conversion helpers built on copy_to_layout. A no-op
/// (plain copy) when the tensor is already in the requested layout.
Tensor to_layout(const Tensor& src, Layout layout);
Tensor to_row_major(const Tensor& src);

/// Number of elements implied by a shape. Throws std::overflow_error when
/// the dimension product overflows std::size_t (a silent wrap would
/// under-allocate storage and turn later indexing into OOB writes).
std::size_t shape_size(const std::vector<int>& shape);
std::size_t shape_size(std::initializer_list<int> shape);

}  // namespace sma::nn
