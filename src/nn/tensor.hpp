// Minimal dense float tensor.
//
// Row-major contiguous storage with a dynamic shape; just enough for the
// attack network's needs (no views, no broadcasting — layers operate on
// explicit shapes). Keeping it small makes the backprop code easy to audit
// against the paper's equations.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace sma::nn {

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(std::vector<int> shape);

  static Tensor zeros(std::vector<int> shape) { return Tensor(std::move(shape)); }

  /// Gaussian init with the given standard deviation.
  static Tensor randn(std::vector<int> shape, util::Pcg32& rng, double stddev);

  const std::vector<int>& shape() const { return shape_; }
  int dim(int axis) const { return shape_.at(axis); }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  float& operator[](std::size_t i) { return data_[i]; }
  float operator[](std::size_t i) const { return data_[i]; }

  void fill(float value);
  /// Reinterpret the shape; total element count must match.
  void reshape(std::vector<int> shape);

  /// "[2, 3, 4]" for diagnostics.
  std::string shape_string() const;

 private:
  std::vector<int> shape_;
  std::vector<float> data_;
};

/// Number of elements implied by a shape.
std::size_t shape_size(const std::vector<int>& shape);

}  // namespace sma::nn
