// The paper's neural network (Fig. 4 / Table 2).
//
// Two input branches are fused: a vector branch (fc1 + four FC-ResNet
// blocks over 27 per-VPP features) and an image branch (a 12-layer conv
// trunk with weight sharing across the n source images and the sink
// image, global average pooling, two FC layers, and a sink/source fusion
// FC). The merged trunk (one FC, three FC-ResNet blocks, fc6, fc7) emits
// one score per candidate VPP — or two scores per candidate when
// configured as the two-class ablation baseline.
//
// One forward call processes one sink-fragment query: all n candidate
// VPPs of that sink, exactly as in the paper's batch definition. For
// inference, `forward_batched` stacks B independent queries into ONE
// wide pass — every GEMM sees sum(n_q) rows instead of one query's n —
// and is byte-identical per query to B separate `forward` calls: the
// GEMM contract (nn/gemm.hpp) fixes each output element's accumulation
// chain independently of how many other rows share the panel, and every
// non-GEMM stage (pool, activations, the fusion seams) is row- or
// image-local. Both paths are the same code (`forward_impl`) over a
// per-query row-count span, so batch-1 is the degenerate batched case.
//
// Activation-layout contract: the image branch binds ONE layout across
// the conv trunk — the dataset input and the GlobalAvgPool output are
// the only row-major seams, and everything between them travels in the
// conv pipeline's native layout (channel-major by default; each tensor's
// Layout tag is authoritative). The vector branch, the fusion/merge
// slots, and the fc head are row-major throughout. See nn/layers.hpp for
// the per-layer contract and nn/tensor.hpp for the tag semantics.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <stdexcept>
#include <vector>

#include "nn/arena.hpp"
#include "nn/layers.hpp"
#include "nn/tensor.hpp"

namespace sma::nn {

/// A model stream failed validation at load: bad magic, a header field
/// outside its sane range (hostile or garbage input must never reach
/// tensor allocation as a bad_alloc), a shape mismatch, or truncation.
/// Derives std::runtime_error, so pre-existing catch sites keep working.
class ModelLoadError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct NetConfig {
  int vector_dim = 27;
  int hidden = 128;            ///< width of the FC trunks
  int vector_res_blocks = 4;   ///< paper: fc2 [128x128]x12
  int merged_res_blocks = 3;   ///< paper: fc2 [128x128]x9
  bool use_images = true;
  int image_channels = 3;      ///< one gray channel per scale
  std::array<int, 4> conv_channels = {16, 32, 64, 128};
  int image_fc = 256;          ///< fc3 width
  int fc6_width = 32;
  bool two_class = false;      ///< ablation head (Eq. 3) instead of Eq. 6
  std::uint64_t seed = 42;

  /// The exact Table-2 configuration.
  static NetConfig paper();
  /// Reduced conv widths for single-core CPU training; same topology.
  static NetConfig fast();
};

/// One query: n candidate VPPs of one sink fragment.
struct QueryInput {
  /// [n, vector_dim] vector features.
  Tensor vec;
  /// [n + 1, channels, size, size]: n source-pin images then the sink-pin
  /// image last. Left empty when the net runs vector-only.
  Tensor images;
};

/// B independent queries stacked for one wide inference pass
/// (`AttackNet::forward_batched`). Queries appear in slot order; a query
/// with `query_rows[q] == 0` (empty candidate list) contributes no vector
/// rows and no image planes — callers answer it without the net.
struct BatchedQueryInput {
  /// [sum n_q, vector_dim]: every query's candidate rows, concatenated.
  Tensor vec;
  /// [sum over n_q>0 of (n_q + 1), channels, size, size]: per query, its
  /// n_q source-pin images then its sink-pin image. Empty when the net
  /// runs vector-only.
  Tensor images;
  /// Candidate count n_q per query, in slot order.
  std::vector<int> query_rows;
};

class AttackNet {
 public:
  explicit AttackNet(const NetConfig& config);

  const NetConfig& config() const { return config_; }

  /// Scores [n] (or [n, 2] in two-class mode). The returned reference
  /// points into this network's activation arena: it stays valid (and
  /// unchanged) until the next forward call on this same net. Callers
  /// that need the scores longer must copy.
  const Tensor& forward(const QueryInput& input);

  /// One wide pass over B stacked queries (inference only): scores
  /// [sum n_q] (or [sum n_q, 2] in two-class mode), query q's scores at
  /// rows [offset_q, offset_q + n_q) where offset_q sums the preceding
  /// slots' rows. Byte-identical per query to B separate `forward`
  /// calls — same accumulation order through every layer (see the file
  /// header). Reuses this net's arena: slots grow to the largest batch
  /// seen and later batches run alloc-free. At least one query must have
  /// candidates (all-empty batches never reach the net). The returned
  /// reference follows the same lifetime rule as `forward`.
  const Tensor& forward_batched(const BatchedQueryInput& input);

  /// Backpropagate d(loss)/d(scores); accumulates parameter gradients.
  /// Only valid after single-query `forward`: the batched pass is
  /// inference-only (training keeps the paper's per-query batch
  /// definition), so calling this after `forward_batched` throws
  /// std::logic_error.
  void backward(const Tensor& dscores);

  /// This network's activation arena (stats: bytes pinned, allocations).
  /// Every net — master, gradient lane, pinned inference replica — owns
  /// exactly one arena for its lifetime; after a warm-up query at the
  /// largest shape, `arena().stats().allocs` stops growing: the
  /// forward/backward hot path performs zero heap allocations per query.
  const Arena& arena() const { return *arena_; }

  std::vector<Param> params();
  std::size_t num_parameters();

  /// Binary serialization (config + weights). `save` verifies stream
  /// health after writing and throws std::runtime_error on any failure —
  /// a silent partial write would leave a truncated model file that only
  /// fails (confusingly) at load time. `load` validates every header
  /// field against sane bounds (and, on seekable streams, tensor sizes
  /// against the bytes actually remaining) *before* allocating, so a
  /// truncated or hostile stream throws ModelLoadError instead of
  /// exhausting memory or materializing garbage tensors.
  void save(std::ostream& out);
  static AttackNet load(std::istream& in);

  /// A deep copy with identical weights and zeroed gradients — the
  /// per-worker replica used for lane-parallel training and inference.
  AttackNet clone();

  /// A replica whose layers *read this net's weight tensors* instead of
  /// owning copies (gradients and activation caches stay private, private
  /// weight storage is freed). A fleet of shared replicas carries one
  /// weight copy total: gradient lanes see Adam updates without any
  /// broadcast, and pinned inference replicas (attack/replica_set.hpp)
  /// track the master with zero synchronization. Constraints: this master
  /// must outlive the replica (moving the master is safe — layer objects
  /// live behind stable heap storage), its weights must not be mutated
  /// while a replica is mid-forward/backward, and a shared replica's
  /// `params()`/`save()` see empty value tensors — it is never the
  /// optimizer's target and never serialized.
  AttackNet clone_shared();

 private:
  NetConfig config_;

  /// Per-network activation arena (heap-allocated so the net stays
  /// movable: layers cache the arena's address). Owns every layer's
  /// output/staging slot plus the branch-fusion slots below.
  std::unique_ptr<Arena> arena_;

  // Vector branch. All hidden layers fuse their LeakyReLU into the GEMM
  // epilogue (Act::kLeakyReLU); only fc7 emits raw scores.
  std::unique_ptr<Linear> fc1_;
  std::vector<ResBlock> vec_blocks_;

  // Image branch (shared trunk).
  std::vector<Conv2d> convs_;
  GlobalAvgPool pool_;
  std::unique_ptr<Linear> fc3_;
  std::unique_ptr<Linear> fc4_;
  std::unique_ptr<Linear> fc5_img_;

  // Merged trunk.
  std::unique_ptr<Linear> fc5_merged_;
  std::vector<ResBlock> merged_blocks_;
  std::unique_ptr<Linear> fc6_;
  std::unique_ptr<Linear> fc7_;

  // Branch-fusion arena slots (see forward/backward): fused and merged_in
  // are fully overwritten each forward; dv/dimg are fully overwritten
  // each backward; demb accumulates into its sink row and is acquired
  // zero-filled.
  Arena::Slot fused_slot_ = 0;
  Arena::Slot merged_slot_ = 0;
  Arena::Slot dv_slot_ = 0;
  Arena::Slot dimg_slot_ = 0;
  Arena::Slot demb_slot_ = 0;

  /// The shared implementation behind `forward` and `forward_batched`:
  /// `query_rows[0..num_queries)` holds each query's candidate count; the
  /// stacked vec/images tensors follow the BatchedQueryInput contract
  /// (single-query calls pass num_queries == 1, making the legacy layout).
  const Tensor& forward_impl(const Tensor& vec, const Tensor& images,
                             const int* query_rows, int num_queries);

  // Cached batch size for backward.
  int n_ = 0;
  // Set by a batched forward: the cached activations span many queries,
  // which backward's seam bookkeeping does not model — it must refuse.
  bool batched_ = false;
};

}  // namespace sma::nn
