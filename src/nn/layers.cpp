#include "nn/layers.hpp"

#include <cmath>
#include <cstring>
#include <stdexcept>

namespace sma::nn {

namespace {

/// Transient staging buffers for the blocked conv pipeline. They hold no
/// state across layer calls, so sharing one set per thread (rather than
/// one per layer per lane replica) keeps the training working set small —
/// with 8 gradient lanes the per-layer copies alone would thrash the
/// cache. Thread-local keeps pool workers race-free.
std::vector<float>& tl_y_rows() {
  thread_local std::vector<float> buf;
  return buf;
}
std::vector<float>& tl_dy_rows() {
  thread_local std::vector<float> buf;
  return buf;
}
std::vector<float>& tl_dcols() {
  thread_local std::vector<float> buf;
  return buf;
}

}  // namespace

// --------------------------------------------------------------------
// Linear

Linear::Linear(int in, int out, util::Pcg32& rng, std::string name, Act act,
               float slope)
    : in_(in),
      out_(out),
      name_(std::move(name)),
      act_(act),
      slope_(slope),
      w_(Tensor::randn({out, in}, rng, std::sqrt(2.0 / in))),
      b_(Tensor({out})),
      dw_(Tensor({out, in})),
      db_(Tensor({out})) {}

Tensor Linear::forward(const Tensor& x) {
  if (x.shape().back() != in_) {
    throw std::invalid_argument(name_ + ": bad input width " +
                                x.shape_string());
  }
  x_ = x;
  const int rows = static_cast<int>(x.size()) / in_;
  Tensor y({rows, out_});
  const bool fused = act_ == Act::kLeakyReLU;
  if (fused) mask_.resize(static_cast<std::size_t>(rows) * out_);
  if (fused && kernel_backend() == KernelBackend::kReference) {
    // Seed behavior, reproduced faithfully as the bench baseline: naive
    // GEMM + bias, then a separate LeakyReLU layer (one copy to cache
    // the pre-activation, one copy for the output, an in-place pass).
    gemm_forward_nt(rows, out_, in_, x.data(), weight().data(), bias().data(),
                    y.data(), Epilogue::kBias, slope_, mask_.data(),
                    thread_scratch());
    Tensor preact_cache = y;
    Tensor activated = y;
    for (std::size_t i = 0; i < activated.size(); ++i) {
      if (activated[i] < 0.0f) activated[i] *= slope_;
    }
    (void)preact_cache;
    return activated;
  }
  // y = x * w^T + b (+ LeakyReLU), all in one kernel pass.
  gemm_forward_nt(rows, out_, in_, x.data(), weight().data(), bias().data(), y.data(),
                  fused ? Epilogue::kBiasLeakyReLU : Epilogue::kBias, slope_,
                  fused ? mask_.data() : nullptr, thread_scratch());
  return y;
}

Tensor Linear::backward(const Tensor& dy) {
  const int rows = static_cast<int>(dy.size()) / out_;
  const Tensor* dsrc = &dy;
  Tensor dmasked;
  if (act_ == Act::kLeakyReLU) {
    dmasked = dy;
    for (std::size_t i = 0; i < dmasked.size(); ++i) {
      if (mask_[i]) dmasked[i] *= slope_;
    }
    dsrc = &dmasked;
  }
  // dw += dy^T * x ; stored [out, in]
  gemm_acc_tn(out_, in_, rows, dsrc->data(), x_.data(), dw_.data(), thread_scratch());
  for (int r = 0; r < rows; ++r) {
    const float* dyr = dsrc->data() + static_cast<std::size_t>(r) * out_;
    for (int o = 0; o < out_; ++o) db_[o] += dyr[o];
  }
  Tensor dx({rows, in_});
  // dx = dy * w
  gemm_ovr_nn(rows, in_, out_, dsrc->data(), weight().data(), dx.data(), thread_scratch());
  return dx;
}

void Linear::collect_params(std::vector<Param>& out) {
  out.push_back({name_ + ".w", &w_, &dw_});
  out.push_back({name_ + ".b", &b_, &db_});
}

void Linear::share_weights_from(const Linear& master) {
  // Resolve chains so a replica of a replica still reads the root master.
  shared_w_ = &master.weight();
  shared_b_ = &master.bias();
  // The private storage is dormant from here on; free it so a lane/
  // replica fleet carries one weight copy total instead of one per net.
  w_ = Tensor();
  b_ = Tensor();
}

// --------------------------------------------------------------------
// LeakyReLU

Tensor LeakyReLU::forward(const Tensor& x) {
  x_ = x;
  Tensor y = x;
  for (std::size_t i = 0; i < y.size(); ++i) {
    if (y[i] < 0.0f) y[i] *= slope_;
  }
  return y;
}

Tensor LeakyReLU::backward(const Tensor& dy) {
  Tensor dx = dy;
  for (std::size_t i = 0; i < dx.size(); ++i) {
    if (x_[i] < 0.0f) dx[i] *= slope_;
  }
  return dx;
}

// --------------------------------------------------------------------
// Conv2d

Conv2d::Conv2d(int in_channels, int out_channels, int stride,
               util::Pcg32& rng, std::string name, Act act, float slope)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      stride_(stride),
      name_(std::move(name)),
      act_(act),
      slope_(slope),
      w_(Tensor::randn({out_channels, in_channels * 9}, rng,
                       std::sqrt(2.0 / (in_channels * 9)))),
      b_(Tensor({out_channels})),
      dw_(Tensor({out_channels, in_channels * 9})),
      db_(Tensor({out_channels})) {}

Tensor Conv2d::forward(const Tensor& x) {
  const auto& shape = x.shape();
  if (shape.size() != 4 || shape[1] != in_channels_) {
    throw std::invalid_argument(name_ + ": bad conv input " +
                                x.shape_string());
  }
  x_shape_ = shape;
  used_blocked_path_ = kernel_backend() == KernelBackend::kBlocked;
  return used_blocked_path_ ? forward_blocked(x) : forward_reference(x);
}

Tensor Conv2d::backward(const Tensor& dy) {
  return used_blocked_path_ ? backward_blocked(dy) : backward_reference(dy);
}

// ---- blocked pipeline (transposed layouts) --------------------------

Tensor Conv2d::forward_blocked(const Tensor& x) {
  const int n = x_shape_[0];
  const int h = x_shape_[2];
  const int w = x_shape_[3];
  const int ho = out_size(h);
  const int wo = out_size(w);
  const int rows = n * ho * wo;
  const int patch = in_channels_ * 9;

  // im2col, transposed: cols_[q][row] for patch offset q = (c, ky, kx).
  // Each (img, oy) output row is one contiguous run in the source image,
  // so the stride-1 interior is a straight memcpy.
  cols_.resize(static_cast<std::size_t>(patch) * rows);
  for (int c = 0; c < in_channels_; ++c) {
    for (int ky = 0; ky < 3; ++ky) {
      for (int kx = 0; kx < 3; ++kx) {
        float* dst = cols_.data() +
                     static_cast<std::size_t>((c * 3 + ky) * 3 + kx) * rows;
        for (int img = 0; img < n; ++img) {
          const float* plane =
              x.data() +
              (static_cast<std::size_t>(img) * in_channels_ + c) * h * w;
          for (int oy = 0; oy < ho; ++oy) {
            float* out_row = dst + (static_cast<std::size_t>(img) * ho + oy) * wo;
            const int iy = oy * stride_ - 1 + ky;
            if (iy < 0 || iy >= h) {
              for (int ox = 0; ox < wo; ++ox) out_row[ox] = 0.0f;
              continue;
            }
            const float* src_row = plane + static_cast<std::size_t>(iy) * w;
            // ix = ox * stride - 1 + kx is in [0, w) exactly for ox in
            // [ox_lo, ox_hi); edges are padding zeros. The w < kx guard
            // matters: for a 1-wide row and kx = 2 the naive formula
            // (w - kx) / stride + 1 truncates -1/stride toward zero and
            // admitted ox = 0, reading one float past the row (heap
            // garbage on the last plane — nondeterministic models).
            const int ox_lo = kx == 0 ? 1 : 0;
            const int ox_hi_raw = w < kx ? 0 : (w - kx) / stride_ + 1;
            const int ox_hi = wo < ox_hi_raw ? wo : ox_hi_raw;
            for (int ox = 0; ox < ox_lo; ++ox) out_row[ox] = 0.0f;
            if (stride_ == 1) {
              std::memcpy(out_row + ox_lo, src_row + ox_lo - 1 + kx,
                          sizeof(float) * (ox_hi - ox_lo));
            } else {
              for (int ox = ox_lo; ox < ox_hi; ++ox) {
                out_row[ox] = src_row[ox * stride_ - 1 + kx];
              }
            }
            for (int ox = ox_hi; ox < wo; ++ox) out_row[ox] = 0.0f;
          }
        }
      }
    }
  }

  const bool fused = act_ == Act::kLeakyReLU;
  std::vector<float>& y_rows = tl_y_rows();
  y_rows.resize(static_cast<std::size_t>(out_channels_) * rows);
  if (fused) mask_.resize(static_cast<std::size_t>(out_channels_) * rows);
  // y^T[out, rows] = W[out, patch] * cols^T[patch, rows] + bias (+ act).
  gemm_forward_nn_rowbias(out_channels_, rows, patch, weight().data(), cols_.data(),
                          bias().data(), y_rows.data(),
                          fused ? Epilogue::kBiasLeakyReLU : Epilogue::kBias,
                          slope_, fused ? mask_.data() : nullptr, thread_scratch());

  // [out, n*ho*wo] -> [n, out, ho, wo]: contiguous copy per (img, o).
  Tensor out({n, out_channels_, ho, wo});
  const std::size_t how = static_cast<std::size_t>(ho) * wo;
  for (int o = 0; o < out_channels_; ++o) {
    const float* src = y_rows.data() + static_cast<std::size_t>(o) * rows;
    for (int img = 0; img < n; ++img) {
      std::memcpy(out.data() +
                      (static_cast<std::size_t>(img) * out_channels_ + o) * how,
                  src + static_cast<std::size_t>(img) * how,
                  sizeof(float) * how);
    }
  }
  return out;
}

Tensor Conv2d::backward_blocked(const Tensor& dy) {
  const int n = x_shape_[0];
  const int h = x_shape_[2];
  const int w = x_shape_[3];
  const int ho = out_size(h);
  const int wo = out_size(w);
  const int rows = n * ho * wo;
  const int patch = in_channels_ * 9;
  const bool fused = act_ == Act::kLeakyReLU;
  const std::size_t how = static_cast<std::size_t>(ho) * wo;

  // dy [n, out, ho, wo] -> dy^T [out, rows], applying the fused
  // activation's mask on the way through.
  std::vector<float>& dy_rows = tl_dy_rows();
  dy_rows.resize(static_cast<std::size_t>(out_channels_) * rows);
  for (int o = 0; o < out_channels_; ++o) {
    float* dst = dy_rows.data() + static_cast<std::size_t>(o) * rows;
    for (int img = 0; img < n; ++img) {
      const float* src =
          dy.data() +
          (static_cast<std::size_t>(img) * out_channels_ + o) * how;
      float* drow = dst + static_cast<std::size_t>(img) * how;
      if (fused) {
        const std::uint8_t* mrow = mask_.data() +
                                   static_cast<std::size_t>(o) * rows +
                                   static_cast<std::size_t>(img) * how;
        for (std::size_t t = 0; t < how; ++t) {
          drow[t] = mrow[t] ? src[t] * slope_ : src[t];
        }
      } else {
        std::memcpy(drow, src, sizeof(float) * how);
      }
    }
  }

  // dw += dy^T * cols (k = rows, ascending — the seed accumulation order).
  gemm_acc_nt(out_channels_, patch, rows, dy_rows.data(), cols_.data(),
              dw_.data(), thread_scratch());
  // db: one ascending-r chain per channel (bit-identical to the seed's
  // row-major sum); four channels in flight to hide the add latency the
  // strict chain ordering imposes.
  for (int o0 = 0; o0 < out_channels_; o0 += 4) {
    const int ov = out_channels_ - o0 < 4 ? out_channels_ - o0 : 4;
    float acc[4];
    const float* drow[4];
    for (int j = 0; j < ov; ++j) {
      acc[j] = db_[o0 + j];
      drow[j] = dy_rows.data() + static_cast<std::size_t>(o0 + j) * rows;
    }
    for (int r = 0; r < rows; ++r) {
      for (int j = 0; j < ov; ++j) acc[j] += drow[j][r];
    }
    for (int j = 0; j < ov; ++j) db_[o0 + j] = acc[j];
  }

  if (!compute_input_grad_) return Tensor();

  // dcols^T[patch, rows] = W^T * dy^T.
  std::vector<float>& dcols = tl_dcols();
  dcols.resize(static_cast<std::size_t>(patch) * rows);
  gemm_ovr_tn(patch, rows, out_channels_, weight().data(), dy_rows.data(),
              dcols.data(), thread_scratch());

  // col2im from the transposed layout. Loop order (c asc, ky desc,
  // kx desc, img, oy, ox) reproduces the seed's per-element accumulation
  // order: for a fixed dx element each output position contributes at
  // most one tap, and ky desc <=> oy asc (resp. kx/ox), so contributions
  // arrive in ascending (oy, ox) — exactly the seed nest.
  Tensor dx(x_shape_);
  for (int c = 0; c < in_channels_; ++c) {
    for (int ky = 2; ky >= 0; --ky) {
      for (int kx = 2; kx >= 0; --kx) {
        const float* src =
            dcols.data() +
            static_cast<std::size_t>((c * 3 + ky) * 3 + kx) * rows;
        for (int img = 0; img < n; ++img) {
          float* plane =
              dx.data() +
              (static_cast<std::size_t>(img) * in_channels_ + c) * h * w;
          for (int oy = 0; oy < ho; ++oy) {
            const int iy = oy * stride_ - 1 + ky;
            if (iy < 0 || iy >= h) continue;
            const float* srow =
                src + (static_cast<std::size_t>(img) * ho + oy) * wo;
            float* drow = plane + static_cast<std::size_t>(iy) * w;
            // Same w < kx guard as im2col: without it this loop WROTE one
            // float past a 1-wide row (silent dx corruption).
            const int ox_lo = kx == 0 ? 1 : 0;
            const int ox_hi_raw = w < kx ? 0 : (w - kx) / stride_ + 1;
            const int ox_hi = wo < ox_hi_raw ? wo : ox_hi_raw;
            if (stride_ == 1) {
              float* base = drow + kx - 1;
              for (int ox = ox_lo; ox < ox_hi; ++ox) base[ox] += srow[ox];
            } else {
              for (int ox = ox_lo; ox < ox_hi; ++ox) {
                drow[ox * stride_ - 1 + kx] += srow[ox];
              }
            }
          }
        }
      }
    }
  }
  return dx;
}

// ---- reference pipeline (the seed's layouts and kernels) -------------

Tensor Conv2d::forward_reference(const Tensor& x) {
  const int n = x_shape_[0];
  const int h = x_shape_[2];
  const int w = x_shape_[3];
  const int ho = out_size(h);
  const int wo = out_size(w);
  const int rows = n * ho * wo;
  const int patch = in_channels_ * 9;

  // Seed behavior, reproduced faithfully as the bench baseline: the
  // im2col matrix was a freshly allocated (zeroed) tensor every call.
  cols_.clear();
  cols_.shrink_to_fit();
  cols_.resize(static_cast<std::size_t>(rows) * patch);
  // im2col with zero padding 1 (the seed loop).
  float* col = cols_.data();
  for (int img = 0; img < n; ++img) {
    const float* base =
        x.data() + static_cast<std::size_t>(img) * in_channels_ * h * w;
    for (int oy = 0; oy < ho; ++oy) {
      for (int ox = 0; ox < wo; ++ox) {
        for (int c = 0; c < in_channels_; ++c) {
          const float* plane = base + static_cast<std::size_t>(c) * h * w;
          for (int ky = 0; ky < 3; ++ky) {
            const int iy = oy * stride_ - 1 + ky;
            for (int kx = 0; kx < 3; ++kx) {
              const int ix = ox * stride_ - 1 + kx;
              *col++ = (iy >= 0 && iy < h && ix >= 0 && ix < w)
                           ? plane[static_cast<std::size_t>(iy) * w + ix]
                           : 0.0f;
            }
          }
        }
      }
    }
  }

  const bool fused = act_ == Act::kLeakyReLU;
  std::vector<float> y_rows(static_cast<std::size_t>(rows) * out_channels_);
  if (fused) mask_.resize(static_cast<std::size_t>(rows) * out_channels_);
  gemm_forward_nt(rows, out_channels_, patch, cols_.data(), weight().data(),
                  bias().data(), y_rows.data(), Epilogue::kBias, slope_,
                  fused ? mask_.data() : nullptr, thread_scratch());

  // Reorder [n*ho*wo, out] -> [n, out, ho, wo].
  Tensor out({n, out_channels_, ho, wo});
  for (int img = 0; img < n; ++img) {
    for (int oy = 0; oy < ho; ++oy) {
      for (int ox = 0; ox < wo; ++ox) {
        const float* src =
            y_rows.data() +
            (static_cast<std::size_t>(img) * ho * wo + oy * wo + ox) *
                out_channels_;
        for (int o = 0; o < out_channels_; ++o) {
          out.data()[((static_cast<std::size_t>(img) * out_channels_ + o) *
                          ho +
                      oy) *
                         wo +
                     ox] = src[o];
        }
      }
    }
  }
  if (fused) {
    // The seed ran a separate LeakyReLU layer here: one copy to cache the
    // pre-activation, one copy for the output, then an in-place pass.
    Tensor preact_cache = out;
    Tensor activated = out;
    for (std::size_t i = 0; i < activated.size(); ++i) {
      if (activated[i] < 0.0f) activated[i] *= slope_;
    }
    (void)preact_cache;
    return activated;
  }
  return out;
}

Tensor Conv2d::backward_reference(const Tensor& dy) {
  const int n = x_shape_[0];
  const int h = x_shape_[2];
  const int w = x_shape_[3];
  const int ho = out_size(h);
  const int wo = out_size(w);
  const int rows = n * ho * wo;
  const int patch = in_channels_ * 9;
  const bool fused = act_ == Act::kLeakyReLU;

  // The seed's activation layer copied dy before masking, and the seed
  // conv allocated its gradient staging tensors per call.
  Tensor dy_masked = dy;
  if (fused) {
    float* dm = dy_masked.data();
    for (int img = 0; img < n; ++img) {
      for (int o = 0; o < out_channels_; ++o) {
        const std::size_t off =
            (static_cast<std::size_t>(img) * out_channels_ + o) * ho * wo;
        for (int t = 0; t < ho * wo; ++t) {
          const std::size_t row_index =
              (static_cast<std::size_t>(img) * ho * wo + t) * out_channels_ +
              o;
          if (mask_[row_index]) dm[off + t] *= slope_;
        }
      }
    }
  }
  std::vector<float> dy_rows(static_cast<std::size_t>(rows) * out_channels_);
  for (int img = 0; img < n; ++img) {
    for (int o = 0; o < out_channels_; ++o) {
      const float* plane =
          dy_masked.data() +
          (static_cast<std::size_t>(img) * out_channels_ + o) * ho * wo;
      for (int oy = 0; oy < ho; ++oy) {
        for (int ox = 0; ox < wo; ++ox) {
          dy_rows[(static_cast<std::size_t>(img) * ho * wo + oy * wo + ox) *
                      out_channels_ +
                  o] = plane[static_cast<std::size_t>(oy) * wo + ox];
        }
      }
    }
  }

  // dw += dy_rows^T * cols
  gemm_acc_tn(out_channels_, patch, rows, dy_rows.data(), cols_.data(),
              dw_.data(), thread_scratch());
  for (int r = 0; r < rows; ++r) {
    const float* dyr =
        dy_rows.data() + static_cast<std::size_t>(r) * out_channels_;
    for (int o = 0; o < out_channels_; ++o) db_[o] += dyr[o];
  }

  // dcols = dy_rows * w  (the seed always computed the input gradient,
  // even for a network's first layer).
  std::vector<float> dcols(static_cast<std::size_t>(rows) * patch);
  gemm_ovr_nn(rows, patch, out_channels_, dy_rows.data(), weight().data(),
              dcols.data(), thread_scratch());

  // col2im.
  Tensor dx(x_shape_);
  const float* col = dcols.data();
  for (int img = 0; img < n; ++img) {
    float* base =
        dx.data() + static_cast<std::size_t>(img) * in_channels_ * h * w;
    for (int oy = 0; oy < ho; ++oy) {
      for (int ox = 0; ox < wo; ++ox) {
        for (int c = 0; c < in_channels_; ++c) {
          float* plane = base + static_cast<std::size_t>(c) * h * w;
          for (int ky = 0; ky < 3; ++ky) {
            const int iy = oy * stride_ - 1 + ky;
            for (int kx = 0; kx < 3; ++kx) {
              const int ix = ox * stride_ - 1 + kx;
              float v = *col++;
              if (iy >= 0 && iy < h && ix >= 0 && ix < w) {
                plane[static_cast<std::size_t>(iy) * w + ix] += v;
              }
            }
          }
        }
      }
    }
  }
  return dx;
}

void Conv2d::collect_params(std::vector<Param>& out) {
  out.push_back({name_ + ".w", &w_, &dw_});
  out.push_back({name_ + ".b", &b_, &db_});
}

void Conv2d::share_weights_from(const Conv2d& master) {
  shared_w_ = &master.weight();
  shared_b_ = &master.bias();
  w_ = Tensor();
  b_ = Tensor();
}

// --------------------------------------------------------------------
// GlobalAvgPool

Tensor GlobalAvgPool::forward(const Tensor& x) {
  x_shape_ = x.shape();
  const int n = x_shape_[0];
  const int c = x_shape_[1];
  const int hw = x_shape_[2] * x_shape_[3];
  Tensor y({n, c});
  for (int img = 0; img < n; ++img) {
    for (int ch = 0; ch < c; ++ch) {
      const float* plane =
          x.data() + (static_cast<std::size_t>(img) * c + ch) * hw;
      float acc = 0.0f;
      for (int i = 0; i < hw; ++i) acc += plane[i];
      y.data()[static_cast<std::size_t>(img) * c + ch] = acc / hw;
    }
  }
  return y;
}

Tensor GlobalAvgPool::backward(const Tensor& dy) {
  const int n = x_shape_[0];
  const int c = x_shape_[1];
  const int hw = x_shape_[2] * x_shape_[3];
  Tensor dx(x_shape_);
  for (int img = 0; img < n; ++img) {
    for (int ch = 0; ch < c; ++ch) {
      const float g =
          dy.data()[static_cast<std::size_t>(img) * c + ch] / hw;
      float* plane =
          dx.data() + (static_cast<std::size_t>(img) * c + ch) * hw;
      for (int i = 0; i < hw; ++i) plane[i] = g;
    }
  }
  return dx;
}

// --------------------------------------------------------------------
// ResBlock

ResBlock::ResBlock(int width, util::Pcg32& rng, const std::string& name)
    : fc1_(width, width, rng, name + ".fc1", Act::kLeakyReLU),
      fc2_(width, width, rng, name + ".fc2", Act::kLeakyReLU),
      fc3_(width, width, rng, name + ".fc3", Act::kLeakyReLU) {}

Tensor ResBlock::forward(const Tensor& x) {
  Tensor h = fc1_.forward(x);
  h = fc2_.forward(h);
  h = fc3_.forward(h);
  for (std::size_t i = 0; i < h.size(); ++i) h[i] += x[i];
  return h;
}

Tensor ResBlock::backward(const Tensor& dy) {
  Tensor dh = fc1_.backward(fc2_.backward(fc3_.backward(dy)));
  for (std::size_t i = 0; i < dh.size(); ++i) dh[i] += dy[i];
  return dh;
}

void ResBlock::collect_params(std::vector<Param>& out) {
  fc1_.collect_params(out);
  fc2_.collect_params(out);
  fc3_.collect_params(out);
}

void ResBlock::share_weights_from(const ResBlock& master) {
  fc1_.share_weights_from(master.fc1_);
  fc2_.share_weights_from(master.fc2_);
  fc3_.share_weights_from(master.fc3_);
}

}  // namespace sma::nn
