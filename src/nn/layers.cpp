#include "nn/layers.hpp"

#include <cmath>
#include <stdexcept>

namespace sma::nn {

// --------------------------------------------------------------------
// GEMM helpers. The k-inner / j-vectorized orderings below auto-vectorize
// well with -O2/-O3 and are the workhorses of both Linear and Conv2d.

void gemm_nn(int m, int n, int k, const float* a, const float* b, float* c) {
  for (int i = 0; i < m; ++i) {
    float* ci = c + static_cast<std::size_t>(i) * n;
    const float* ai = a + static_cast<std::size_t>(i) * k;
    for (int p = 0; p < k; ++p) {
      const float av = ai[p];
      if (av == 0.0f) continue;
      const float* bp = b + static_cast<std::size_t>(p) * n;
      for (int j = 0; j < n; ++j) {
        ci[j] += av * bp[j];
      }
    }
  }
}

void gemm_tn(int m, int n, int k, const float* a, const float* b, float* c) {
  // a stored [K, M]; effective A[i, p] = a[p, i].
  for (int p = 0; p < k; ++p) {
    const float* ap = a + static_cast<std::size_t>(p) * m;
    const float* bp = b + static_cast<std::size_t>(p) * n;
    for (int i = 0; i < m; ++i) {
      const float av = ap[i];
      if (av == 0.0f) continue;
      float* ci = c + static_cast<std::size_t>(i) * n;
      for (int j = 0; j < n; ++j) {
        ci[j] += av * bp[j];
      }
    }
  }
}

void gemm_nt(int m, int n, int k, const float* a, const float* b, float* c) {
  // b stored [N, K]; effective B[p, j] = b[j, p].
  for (int i = 0; i < m; ++i) {
    const float* ai = a + static_cast<std::size_t>(i) * k;
    float* ci = c + static_cast<std::size_t>(i) * n;
    for (int j = 0; j < n; ++j) {
      const float* bj = b + static_cast<std::size_t>(j) * k;
      float acc = 0.0f;
      for (int p = 0; p < k; ++p) {
        acc += ai[p] * bj[p];
      }
      ci[j] += acc;
    }
  }
}

// --------------------------------------------------------------------
// Linear

Linear::Linear(int in, int out, util::Pcg32& rng, std::string name)
    : in_(in),
      out_(out),
      name_(std::move(name)),
      w_(Tensor::randn({out, in}, rng, std::sqrt(2.0 / in))),
      b_(Tensor({out})),
      dw_(Tensor({out, in})),
      db_(Tensor({out})) {}

Tensor Linear::forward(const Tensor& x) {
  if (x.shape().back() != in_) {
    throw std::invalid_argument(name_ + ": bad input width " +
                                x.shape_string());
  }
  x_ = x;
  const int rows = static_cast<int>(x.size()) / in_;
  Tensor y({rows, out_});
  // y = x * w^T + b
  gemm_nt(rows, out_, in_, x.data(), w_.data(), y.data());
  for (int r = 0; r < rows; ++r) {
    float* yr = y.data() + static_cast<std::size_t>(r) * out_;
    for (int o = 0; o < out_; ++o) yr[o] += b_[o];
  }
  return y;
}

Tensor Linear::backward(const Tensor& dy) {
  const int rows = static_cast<int>(dy.size()) / out_;
  // dw += dy^T * x ; stored [out, in]
  gemm_tn(out_, in_, rows, dy.data(), x_.data(), dw_.data());
  for (int r = 0; r < rows; ++r) {
    const float* dyr = dy.data() + static_cast<std::size_t>(r) * out_;
    for (int o = 0; o < out_; ++o) db_[o] += dyr[o];
  }
  Tensor dx({rows, in_});
  // dx = dy * w
  gemm_nn(rows, in_, out_, dy.data(), w_.data(), dx.data());
  return dx;
}

void Linear::collect_params(std::vector<Param>& out) {
  out.push_back({name_ + ".w", &w_, &dw_});
  out.push_back({name_ + ".b", &b_, &db_});
}

// --------------------------------------------------------------------
// LeakyReLU

Tensor LeakyReLU::forward(const Tensor& x) {
  x_ = x;
  Tensor y = x;
  for (std::size_t i = 0; i < y.size(); ++i) {
    if (y[i] < 0.0f) y[i] *= slope_;
  }
  return y;
}

Tensor LeakyReLU::backward(const Tensor& dy) {
  Tensor dx = dy;
  for (std::size_t i = 0; i < dx.size(); ++i) {
    if (x_[i] < 0.0f) dx[i] *= slope_;
  }
  return dx;
}

// --------------------------------------------------------------------
// Conv2d

Conv2d::Conv2d(int in_channels, int out_channels, int stride,
               util::Pcg32& rng, std::string name)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      stride_(stride),
      name_(std::move(name)),
      w_(Tensor::randn({out_channels, in_channels * 9}, rng,
                       std::sqrt(2.0 / (in_channels * 9)))),
      b_(Tensor({out_channels})),
      dw_(Tensor({out_channels, in_channels * 9})),
      db_(Tensor({out_channels})) {}

Tensor Conv2d::forward(const Tensor& x) {
  const auto& shape = x.shape();
  if (shape.size() != 4 || shape[1] != in_channels_) {
    throw std::invalid_argument(name_ + ": bad conv input " +
                                x.shape_string());
  }
  x_shape_ = shape;
  const int n = shape[0];
  const int h = shape[2];
  const int w = shape[3];
  const int ho = out_size(h);
  const int wo = out_size(w);
  const int patch = in_channels_ * 9;

  cols_ = Tensor({n * ho * wo, patch});
  // im2col with zero padding 1.
  float* col = cols_.data();
  for (int img = 0; img < n; ++img) {
    const float* base =
        x.data() + static_cast<std::size_t>(img) * in_channels_ * h * w;
    for (int oy = 0; oy < ho; ++oy) {
      for (int ox = 0; ox < wo; ++ox) {
        for (int c = 0; c < in_channels_; ++c) {
          const float* plane = base + static_cast<std::size_t>(c) * h * w;
          for (int ky = 0; ky < 3; ++ky) {
            const int iy = oy * stride_ - 1 + ky;
            for (int kx = 0; kx < 3; ++kx) {
              const int ix = ox * stride_ - 1 + kx;
              *col++ = (iy >= 0 && iy < h && ix >= 0 && ix < w)
                           ? plane[static_cast<std::size_t>(iy) * w + ix]
                           : 0.0f;
            }
          }
        }
      }
    }
  }

  Tensor y({n * ho * wo, out_channels_});
  gemm_nt(n * ho * wo, out_channels_, patch, cols_.data(), w_.data(),
          y.data());
  for (int r = 0; r < n * ho * wo; ++r) {
    float* yr = y.data() + static_cast<std::size_t>(r) * out_channels_;
    for (int o = 0; o < out_channels_; ++o) yr[o] += b_[o];
  }

  // Reorder [n*ho*wo, out] -> [n, out, ho, wo].
  Tensor out({n, out_channels_, ho, wo});
  for (int img = 0; img < n; ++img) {
    for (int oy = 0; oy < ho; ++oy) {
      for (int ox = 0; ox < wo; ++ox) {
        const float* src =
            y.data() +
            (static_cast<std::size_t>(img) * ho * wo + oy * wo + ox) *
                out_channels_;
        for (int o = 0; o < out_channels_; ++o) {
          out.data()[((static_cast<std::size_t>(img) * out_channels_ + o) *
                          ho +
                      oy) *
                         wo +
                     ox] = src[o];
        }
      }
    }
  }
  return out;
}

Tensor Conv2d::backward(const Tensor& dy) {
  const int n = x_shape_[0];
  const int h = x_shape_[2];
  const int w = x_shape_[3];
  const int ho = out_size(h);
  const int wo = out_size(w);
  const int patch = in_channels_ * 9;

  // Reorder dy [n, out, ho, wo] -> [n*ho*wo, out].
  Tensor dy_rows({n * ho * wo, out_channels_});
  for (int img = 0; img < n; ++img) {
    for (int o = 0; o < out_channels_; ++o) {
      const float* plane =
          dy.data() +
          (static_cast<std::size_t>(img) * out_channels_ + o) * ho * wo;
      for (int oy = 0; oy < ho; ++oy) {
        for (int ox = 0; ox < wo; ++ox) {
          dy_rows.data()[(static_cast<std::size_t>(img) * ho * wo + oy * wo +
                          ox) *
                             out_channels_ +
                         o] = plane[static_cast<std::size_t>(oy) * wo + ox];
        }
      }
    }
  }

  // dw += dy_rows^T * cols
  gemm_tn(out_channels_, patch, n * ho * wo, dy_rows.data(), cols_.data(),
          dw_.data());
  for (int r = 0; r < n * ho * wo; ++r) {
    const float* dyr =
        dy_rows.data() + static_cast<std::size_t>(r) * out_channels_;
    for (int o = 0; o < out_channels_; ++o) db_[o] += dyr[o];
  }

  // dcols = dy_rows * w
  Tensor dcols({n * ho * wo, patch});
  gemm_nn(n * ho * wo, patch, out_channels_, dy_rows.data(), w_.data(),
          dcols.data());

  // col2im.
  Tensor dx(x_shape_);
  const float* col = dcols.data();
  for (int img = 0; img < n; ++img) {
    float* base =
        dx.data() + static_cast<std::size_t>(img) * in_channels_ * h * w;
    for (int oy = 0; oy < ho; ++oy) {
      for (int ox = 0; ox < wo; ++ox) {
        for (int c = 0; c < in_channels_; ++c) {
          float* plane = base + static_cast<std::size_t>(c) * h * w;
          for (int ky = 0; ky < 3; ++ky) {
            const int iy = oy * stride_ - 1 + ky;
            for (int kx = 0; kx < 3; ++kx) {
              const int ix = ox * stride_ - 1 + kx;
              float v = *col++;
              if (iy >= 0 && iy < h && ix >= 0 && ix < w) {
                plane[static_cast<std::size_t>(iy) * w + ix] += v;
              }
            }
          }
        }
      }
    }
  }
  return dx;
}

void Conv2d::collect_params(std::vector<Param>& out) {
  out.push_back({name_ + ".w", &w_, &dw_});
  out.push_back({name_ + ".b", &b_, &db_});
}

// --------------------------------------------------------------------
// GlobalAvgPool

Tensor GlobalAvgPool::forward(const Tensor& x) {
  x_shape_ = x.shape();
  const int n = x_shape_[0];
  const int c = x_shape_[1];
  const int hw = x_shape_[2] * x_shape_[3];
  Tensor y({n, c});
  for (int img = 0; img < n; ++img) {
    for (int ch = 0; ch < c; ++ch) {
      const float* plane =
          x.data() + (static_cast<std::size_t>(img) * c + ch) * hw;
      float acc = 0.0f;
      for (int i = 0; i < hw; ++i) acc += plane[i];
      y.data()[static_cast<std::size_t>(img) * c + ch] = acc / hw;
    }
  }
  return y;
}

Tensor GlobalAvgPool::backward(const Tensor& dy) {
  const int n = x_shape_[0];
  const int c = x_shape_[1];
  const int hw = x_shape_[2] * x_shape_[3];
  Tensor dx(x_shape_);
  for (int img = 0; img < n; ++img) {
    for (int ch = 0; ch < c; ++ch) {
      const float g =
          dy.data()[static_cast<std::size_t>(img) * c + ch] / hw;
      float* plane =
          dx.data() + (static_cast<std::size_t>(img) * c + ch) * hw;
      for (int i = 0; i < hw; ++i) plane[i] = g;
    }
  }
  return dx;
}

// --------------------------------------------------------------------
// ResBlock

ResBlock::ResBlock(int width, util::Pcg32& rng, const std::string& name)
    : fc1_(width, width, rng, name + ".fc1"),
      fc2_(width, width, rng, name + ".fc2"),
      fc3_(width, width, rng, name + ".fc3") {}

Tensor ResBlock::forward(const Tensor& x) {
  Tensor h = act1_.forward(fc1_.forward(x));
  h = act2_.forward(fc2_.forward(h));
  h = act3_.forward(fc3_.forward(h));
  for (std::size_t i = 0; i < h.size(); ++i) h[i] += x[i];
  return h;
}

Tensor ResBlock::backward(const Tensor& dy) {
  Tensor dh = fc1_.backward(act1_.backward(
      fc2_.backward(act2_.backward(fc3_.backward(act3_.backward(dy))))));
  for (std::size_t i = 0; i < dh.size(); ++i) dh[i] += dy[i];
  return dh;
}

void ResBlock::collect_params(std::vector<Param>& out) {
  fc1_.collect_params(out);
  fc2_.collect_params(out);
  fc3_.collect_params(out);
}

}  // namespace sma::nn
