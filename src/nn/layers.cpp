#include "nn/layers.hpp"

#include <cmath>
#include <cstring>
#include <stdexcept>

#include "obs/obs.hpp"

namespace sma::nn {

namespace {

/// Per-thread staging arena. Two tenants:
///  - Call-transient buffers (conv's y^T / dy^T / dcols^T staging and the
///    GEMM packing scratch) for ALL layers, bound or not. They hold no
///    state across layer calls, so one copy per thread — rather than one
///    per network replica — keeps a lane/replica fleet's working set
///    small and cache-hot (with 8 serial gradient lanes, per-replica
///    staging alone would thrash the cache; the PR-2 measurement that
///    originally made these buffers thread-shared still holds).
///  - The fallback persistent arena for layers used standalone (tests,
///    benches, ad-hoc code) that were never bound by an owning network;
///    such a layer must keep running on the thread that first called it.
/// Thread-local keeps pool workers race-free: a layer call runs entirely
/// on one thread, and the transient buffers never outlive the call.
struct ThreadStaging {
  Arena arena;
  Arena::Slot y_rows;
  Arena::Slot dy_rows;
  Arena::Slot dcols;
  ThreadStaging()
      : y_rows(arena.add_floats()),
        dy_rows(arena.add_floats()),
        dcols(arena.add_floats()) {}
};

ThreadStaging& thread_staging() {
  thread_local ThreadStaging staging;
  return staging;
}

Arena& fallback_arena() { return thread_staging().arena; }

/// The calling thread's GEMM packing scratch, tracked by its staging
/// arena (growth counts toward that arena's alloc stats).
GemmScratch& staging_scratch() { return thread_staging().arena.gemm_scratch(); }

}  // namespace

// --------------------------------------------------------------------
// Linear

Linear::Linear(int in, int out, util::Pcg32& rng, std::string name, Act act,
               float slope)
    : in_(in),
      out_(out),
      name_(std::move(name)),
      act_(act),
      slope_(slope),
      w_(Tensor::randn({out, in}, rng, std::sqrt(2.0 / in))),
      b_(Tensor({out})),
      dw_(Tensor({out, in})),
      db_(Tensor({out})) {}

void Linear::bind_arena(Arena& arena) {
  arena_ = &arena;
  y_slot_ = arena.add_tensor();
  dx_slot_ = arena.add_tensor();
  dmasked_slot_ = arena.add_tensor();
  mask_slot_ = arena.add_bytes();
}

void Linear::ensure_arena() {
  if (arena_ == nullptr) bind_arena(fallback_arena());
}

Tensor& Linear::forward(const Tensor& x) {
  if (x.shape().back() != in_) {
    throw std::invalid_argument(name_ + ": bad input width " +
                                x.shape_string());
  }
#ifndef NDEBUG
  // Layout contract: the fc head is a row-major seam — the conv trunk's
  // channel-major activations must have been reduced (GlobalAvgPool) or
  // converted before they reach a Linear.
  if (x.layout() != Layout::kRowMajor) {
    throw std::logic_error(name_ + ": Linear requires row-major input");
  }
#endif
  ensure_arena();
  // Cache the input for backward (dW = dy^T x) by POINTER: inside a
  // network the input is another layer's arena slot (stable and untouched
  // until that layer's next forward, which is after our backward), so the
  // seed's defensive copy was a full tensor of pure memcpy per call. The
  // contract this buys: forward's input must outlive the matching
  // backward unmodified.
  x_ = &x;

  SMA_TRACE_SPAN("nn", "linear_fwd");
  const int rows = static_cast<int>(x.size()) / in_;
  // y: full overwrite — every GEMM form below writes the whole [rows, out]
  // extent (CMode::kOverwrite, or the reference path's explicit zeroing).
  Tensor& y = arena_->tensor(y_slot_, {rows, out_}, Arena::Fill::kNone);
  const bool fused = act_ == Act::kLeakyReLU;
  // mask: full overwrite — the epilogue writes one byte per output
  // element on both the blocked and reference paths.
  if (fused) {
    mask_ = arena_->bytes(mask_slot_, static_cast<std::size_t>(rows) * out_);
  }
  if (fused && kernel_backend() == KernelBackend::kReference) {
    // Seed behavior, reproduced faithfully as the bench baseline: naive
    // GEMM + bias, then a separate LeakyReLU layer (one copy to cache
    // the pre-activation, one copy for the output, an in-place pass).
    gemm_forward_nt(rows, out_, in_, x.data(), weight().data(), bias().data(),
                    y.data(), Epilogue::kBias, slope_, mask_,
                    staging_scratch());
    Tensor preact_cache = y;
    Tensor activated = y;
    (void)preact_cache;
    (void)activated;
    for (std::size_t i = 0; i < y.size(); ++i) {
      if (y[i] < 0.0f) y[i] *= slope_;
    }
    return y;
  }
  // y = x * w^T + b (+ LeakyReLU), all in one kernel pass.
  gemm_forward_nt(rows, out_, in_, x.data(), weight().data(), bias().data(),
                  y.data(),
                  fused ? Epilogue::kBiasLeakyReLU : Epilogue::kBias, slope_,
                  fused ? mask_ : nullptr, staging_scratch());
  return y;
}

Tensor& Linear::backward(const Tensor& dy) {
  ensure_arena();
#ifndef NDEBUG
  if (dy.layout() != Layout::kRowMajor) {
    throw std::logic_error(name_ + ": Linear requires row-major dy");
  }
#endif
  SMA_TRACE_SPAN("nn", "linear_bwd");
  const int rows = static_cast<int>(dy.size()) / out_;
  const Tensor* dsrc = &dy;
  if (act_ == Act::kLeakyReLU) {
    // dmasked: full overwrite by memcpy, then the in-place mask scaling.
    Tensor& dmasked =
        arena_->tensor(dmasked_slot_, {rows, out_}, Arena::Fill::kNone);
    std::memcpy(dmasked.data(), dy.data(), dy.size() * sizeof(float));
    for (std::size_t i = 0; i < dmasked.size(); ++i) {
      if (mask_[i]) dmasked[i] *= slope_;
    }
    dsrc = &dmasked;
  }
  // dw += dy^T * x ; stored [out, in]
  gemm_acc_tn(out_, in_, rows, dsrc->data(), x_->data(), dw_.data(),
              staging_scratch());
  for (int r = 0; r < rows; ++r) {
    const float* dyr = dsrc->data() + static_cast<std::size_t>(r) * out_;
    for (int o = 0; o < out_; ++o) db_[o] += dyr[o];
  }
  // dx: full overwrite (gemm_ovr_nn ignores the destination's contents).
  Tensor& dx = arena_->tensor(dx_slot_, {rows, in_}, Arena::Fill::kNone);
  // dx = dy * w
  gemm_ovr_nn(rows, in_, out_, dsrc->data(), weight().data(), dx.data(),
              staging_scratch());
  return dx;
}

void Linear::collect_params(std::vector<Param>& out) {
  out.push_back({name_ + ".w", &w_, &dw_});
  out.push_back({name_ + ".b", &b_, &db_});
}

void Linear::share_weights_from(const Linear& master) {
  // Resolve chains so a replica of a replica still reads the root master.
  shared_w_ = &master.weight();
  shared_b_ = &master.bias();
  // The private storage is dormant from here on; free it so a lane/
  // replica fleet carries one weight copy total instead of one per net.
  w_ = Tensor();
  b_ = Tensor();
}

// --------------------------------------------------------------------
// LeakyReLU

Tensor LeakyReLU::forward(const Tensor& x) {
  x_ = x;
  Tensor y = x;
  for (std::size_t i = 0; i < y.size(); ++i) {
    if (y[i] < 0.0f) y[i] *= slope_;
  }
  return y;
}

Tensor LeakyReLU::backward(const Tensor& dy) {
  Tensor dx = dy;
  for (std::size_t i = 0; i < dx.size(); ++i) {
    if (x_[i] < 0.0f) dx[i] *= slope_;
  }
  return dx;
}

// --------------------------------------------------------------------
// Conv2d

Conv2d::Conv2d(int in_channels, int out_channels, int stride,
               util::Pcg32& rng, std::string name, Act act, float slope)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      stride_(stride),
      name_(std::move(name)),
      act_(act),
      slope_(slope),
      w_(Tensor::randn({out_channels, in_channels * 9}, rng,
                       std::sqrt(2.0 / (in_channels * 9)))),
      b_(Tensor({out_channels})),
      dw_(Tensor({out_channels, in_channels * 9})),
      db_(Tensor({out_channels})) {}

void Conv2d::bind_arena(Arena& arena) {
  arena_ = &arena;
  cols_slot_ = arena.add_floats();
  mask_slot_ = arena.add_bytes();
  out_slot_ = arena.add_tensor();
  dx_slot_ = arena.add_tensor();
  // Transient staging (y^T / dy^T / dcols^T, live only inside one layer
  // call) is NOT per-net: it comes from the per-thread staging arena —
  // see ThreadStaging above.
}

void Conv2d::ensure_arena() {
  if (arena_ == nullptr) bind_arena(fallback_arena());
}

Tensor& Conv2d::forward(const Tensor& x) {
  const auto& shape = x.shape();
  if (shape.size() != 4 || shape[1] != in_channels_) {
    throw std::invalid_argument(name_ + ": bad conv input " +
                                x.shape_string());
  }
  ensure_arena();
  x_shape_ = shape;
  x_layout_ = x.layout();
  used_blocked_path_ = kernel_backend() == KernelBackend::kBlocked;
#ifndef NDEBUG
  // The reference pipeline is the seed reproduced verbatim: row-major
  // layouts only. Under the reference backend the whole trunk stays
  // row-major, so a channel-major input here is a wiring bug.
  if (!used_blocked_path_ && x_layout_ != Layout::kRowMajor) {
    throw std::logic_error(name_ + ": reference conv requires row-major x");
  }
#endif
  return used_blocked_path_ ? forward_blocked(x) : forward_reference(x);
}

Tensor& Conv2d::backward(const Tensor& dy) {
  return used_blocked_path_ ? backward_blocked(dy) : backward_reference(dy);
}

// ---- blocked pipeline (transposed layouts) --------------------------

Tensor& Conv2d::forward_blocked(const Tensor& x) {
  SMA_TRACE_SPAN("nn", "conv_fwd");
  const int n = x_shape_[0];
  const int h = x_shape_[2];
  const int w = x_shape_[3];
  const int ho = out_size(h);
  const int wo = out_size(w);
  const int rows = n * ho * wo;
  const int patch = in_channels_ * 9;

  // im2col, transposed: cols[q][row] for patch offset q = (c, ky, kx).
  // The fused pack path reads x in whichever storage layout its tag says
  // (channel-major from an upstream conv, row-major from the dataset) —
  // the residual transpose that used to precede im2col is gone. Full
  // overwrite: every element is either a padding zero or a copied value.
  float* cols = arena_->floats(
      cols_slot_, static_cast<std::size_t>(patch) * rows, Arena::Fill::kNone);
  cols_ = cols;
  {
    SMA_TRACE_SPAN_V("nn", "im2col", rows);
    pack_cm_im2col(x.data(), x.layout(), n, in_channels_, h, w, stride_, ho,
                   wo, cols);
  }

  const bool fused = act_ == Act::kLeakyReLU;
  // mask: full overwrite — the GEMM epilogue writes one byte per element.
  if (fused) {
    mask_ = arena_->bytes(mask_slot_,
                          static_cast<std::size_t>(out_channels_) * rows);
  }

  if (conv_layout_mode() == ConvLayoutMode::kChannelMajor) {
    // Channel-major mode: the GEMM's [out, rows] output with rows =
    // (img, oy, ox) IS the [n, out, ho, wo] output stored channel-major,
    // so the kernel writes the arena slot directly — no staging buffer,
    // no reorder, zero nn.reorder_bytes. Full overwrite by the GEMM.
    out_layout_ = Layout::kChannelMajor;
    Tensor& out =
        arena_->tensor(out_slot_, {n, out_channels_, ho, wo},
                       Arena::Fill::kNone, Layout::kChannelMajor);
    // y^T[out, rows] = W[out, patch] * cols^T[patch, rows] + bias (+ act).
    gemm_forward_nn_rowbias(out_channels_, rows, patch, weight().data(), cols,
                            bias().data(), out.data(),
                            fused ? Epilogue::kBiasLeakyReLU : Epilogue::kBias,
                            slope_, fused ? mask_ : nullptr,
                            staging_scratch());
    return out;
  }

  // Row-major compat mode (the PR-7 pipeline, kept as the A/B baseline):
  // GEMM into per-thread staging, then reorder into an NCHW slot.
  out_layout_ = Layout::kRowMajor;
  ThreadStaging& staging = thread_staging();
  float* y_rows = staging.arena.floats(
      staging.y_rows, static_cast<std::size_t>(out_channels_) * rows,
      Arena::Fill::kNone);
  gemm_forward_nn_rowbias(out_channels_, rows, patch, weight().data(), cols,
                          bias().data(), y_rows,
                          fused ? Epilogue::kBiasLeakyReLU : Epilogue::kBias,
                          slope_, fused ? mask_ : nullptr,
                          staging_scratch());

  // [out, n*ho*wo] -> [n, out, ho, wo]: contiguous copy per (img, o).
  // Full overwrite: the (o, img) double loop covers every output plane.
  // This is exactly the layer-boundary permutation the channel-major mode
  // deletes; its traffic is what nn.reorder_bytes measures.
  Tensor& out = arena_->tensor(out_slot_, {n, out_channels_, ho, wo},
                               Arena::Fill::kNone);
  const std::size_t how = static_cast<std::size_t>(ho) * wo;
  SMA_COUNT_N("nn.reorder_bytes",
              static_cast<std::size_t>(out_channels_) * rows * sizeof(float));
  for (int o = 0; o < out_channels_; ++o) {
    const float* src = y_rows + static_cast<std::size_t>(o) * rows;
    for (int img = 0; img < n; ++img) {
      std::memcpy(out.data() +
                      (static_cast<std::size_t>(img) * out_channels_ + o) * how,
                  src + static_cast<std::size_t>(img) * how,
                  sizeof(float) * how);
    }
  }
  return out;
}

Tensor& Conv2d::backward_blocked(const Tensor& dy) {
  SMA_TRACE_SPAN("nn", "conv_bwd");
  const int n = x_shape_[0];
  const int h = x_shape_[2];
  const int w = x_shape_[3];
  const int ho = out_size(h);
  const int wo = out_size(w);
  const int rows = n * ho * wo;
  const int patch = in_channels_ * 9;
  const bool fused = act_ == Act::kLeakyReLU;
  const std::size_t how = static_cast<std::size_t>(ho) * wo;

#ifndef NDEBUG
  // Element-wise (no temporary vector): this runs on the alloc-free
  // steady-state path, which the arena tests police with a global
  // operator-new counter even in Debug.
  if (dy.shape().size() != 4 || dy.dim(0) != n || dy.dim(1) != out_channels_ ||
      dy.dim(2) != ho || dy.dim(3) != wo) {
    throw std::logic_error(name_ + ": conv backward got dy of shape " +
                           dy.shape_string());
  }
#endif

  // dy -> dy^T [out, rows], applying the fused activation's mask on the
  // way through. Dispatch on dy's OWN layout tag (not the global mode):
  //  - channel-major dy is already [out, rows] linear in storage, so the
  //    mask pass is one flat elementwise loop — and when there is no
  //    fused activation, dy's storage is used in place with no copy at
  //    all (the GEMMs below only read it).
  //  - row-major dy takes the retained PR-7 transpose, whose traffic is
  //    the nn.reorder_bytes cost the channel-major pipeline deletes.
  // Either way dy_rows holds byte-identical contents, so dW/db/dcols see
  // identical operands. Full overwrite where a copy happens.
  ThreadStaging& staging = thread_staging();
  const float* dy_rows = nullptr;
  if (dy.layout() == Layout::kChannelMajor) {
    if (fused) {
      float* dm = staging.arena.floats(
          staging.dy_rows, static_cast<std::size_t>(out_channels_) * rows,
          Arena::Fill::kNone);
      const float* src = dy.data();
      const std::size_t total = static_cast<std::size_t>(out_channels_) * rows;
      for (std::size_t i = 0; i < total; ++i) {
        dm[i] = mask_[i] ? src[i] * slope_ : src[i];
      }
      dy_rows = dm;
    } else {
      dy_rows = dy.data();
    }
  } else {
    float* dm = staging.arena.floats(
        staging.dy_rows, static_cast<std::size_t>(out_channels_) * rows,
        Arena::Fill::kNone);
    SMA_COUNT_N("nn.reorder_bytes", static_cast<std::size_t>(out_channels_) *
                                        rows * sizeof(float));
    for (int o = 0; o < out_channels_; ++o) {
      float* dst = dm + static_cast<std::size_t>(o) * rows;
      for (int img = 0; img < n; ++img) {
        const float* src =
            dy.data() +
            (static_cast<std::size_t>(img) * out_channels_ + o) * how;
        float* drow = dst + static_cast<std::size_t>(img) * how;
        if (fused) {
          const std::uint8_t* mrow = mask_ +
                                     static_cast<std::size_t>(o) * rows +
                                     static_cast<std::size_t>(img) * how;
          for (std::size_t t = 0; t < how; ++t) {
            drow[t] = mrow[t] ? src[t] * slope_ : src[t];
          }
        } else {
          std::memcpy(drow, src, sizeof(float) * how);
        }
      }
    }
    dy_rows = dm;
  }

  // dw += dy^T * cols (k = rows, ascending — the seed accumulation order).
  gemm_acc_nt(out_channels_, patch, rows, dy_rows, cols_, dw_.data(),
              staging_scratch());
  // db: one ascending-r chain per channel (bit-identical to the seed's
  // row-major sum); four channels in flight to hide the add latency the
  // strict chain ordering imposes.
  for (int o0 = 0; o0 < out_channels_; o0 += 4) {
    const int ov = out_channels_ - o0 < 4 ? out_channels_ - o0 : 4;
    float acc[4];
    const float* drow[4];
    for (int j = 0; j < ov; ++j) {
      acc[j] = db_[o0 + j];
      drow[j] = dy_rows + static_cast<std::size_t>(o0 + j) * rows;
    }
    for (int r = 0; r < rows; ++r) {
      for (int j = 0; j < ov; ++j) acc[j] += drow[j][r];
    }
    for (int j = 0; j < ov; ++j) db_[o0 + j] = acc[j];
  }

  if (!compute_input_grad_) return empty_;

  // dcols^T[patch, rows] = W^T * dy^T. Full overwrite (gemm_ovr_tn).
  float* dcols = staging.arena.floats(
      staging.dcols, static_cast<std::size_t>(patch) * rows,
      Arena::Fill::kNone);
  gemm_ovr_tn(patch, rows, out_channels_, weight().data(), dy_rows, dcols,
              staging_scratch());

  // col2im through the fused pack path, scattering into dx in the SAME
  // storage layout the forward input had — a channel-major x gets a
  // channel-major dx, so the gradient flows upstream with no reorder.
  // The per-element accumulation order is layout-independent (see
  // pack_cm_col2im), preserving the seed chain. dx accumulates (+=), so
  // the slot is acquired zero-filled — the same bytes a freshly
  // constructed tensor starts from.
  Tensor& dx =
      arena_->tensor(dx_slot_, x_shape_, Arena::Fill::kZero, x_layout_);
  pack_cm_col2im(dcols, x_layout_, n, in_channels_, h, w, stride_, ho, wo,
                 dx.data());
  return dx;
}

// ---- reference pipeline (the seed's layouts and kernels) -------------

Tensor& Conv2d::forward_reference(const Tensor& x) {
  const int n = x_shape_[0];
  const int h = x_shape_[2];
  const int w = x_shape_[3];
  const int ho = out_size(h);
  const int wo = out_size(w);
  const int rows = n * ho * wo;
  const int patch = in_channels_ * 9;

  // Seed behavior, reproduced faithfully as the bench baseline: the
  // im2col matrix was a freshly allocated (zeroed) tensor every call.
  ref_cols_.clear();
  ref_cols_.shrink_to_fit();
  ref_cols_.resize(static_cast<std::size_t>(rows) * patch);
  // im2col with zero padding 1 (the seed loop).
  float* col = ref_cols_.data();
  for (int img = 0; img < n; ++img) {
    const float* base =
        x.data() + static_cast<std::size_t>(img) * in_channels_ * h * w;
    for (int oy = 0; oy < ho; ++oy) {
      for (int ox = 0; ox < wo; ++ox) {
        for (int c = 0; c < in_channels_; ++c) {
          const float* plane = base + static_cast<std::size_t>(c) * h * w;
          for (int ky = 0; ky < 3; ++ky) {
            const int iy = oy * stride_ - 1 + ky;
            for (int kx = 0; kx < 3; ++kx) {
              const int ix = ox * stride_ - 1 + kx;
              *col++ = (iy >= 0 && iy < h && ix >= 0 && ix < w)
                           ? plane[static_cast<std::size_t>(iy) * w + ix]
                           : 0.0f;
            }
          }
        }
      }
    }
  }

  const bool fused = act_ == Act::kLeakyReLU;
  std::vector<float> y_rows(static_cast<std::size_t>(rows) * out_channels_);
  if (fused) {
    mask_ = arena_->bytes(mask_slot_,
                          static_cast<std::size_t>(rows) * out_channels_);
  }
  gemm_forward_nt(rows, out_channels_, patch, ref_cols_.data(),
                  weight().data(), bias().data(), y_rows.data(),
                  Epilogue::kBias, slope_, fused ? mask_ : nullptr,
                  staging_scratch());

  // Reorder [n*ho*wo, out] -> [n, out, ho, wo]. The seed's output was a
  // fresh zeroed tensor; Fill::kZero reproduces both the bytes and the
  // zero-fill cost of that baseline.
  out_layout_ = Layout::kRowMajor;
  SMA_COUNT_N("nn.reorder_bytes",
              static_cast<std::size_t>(rows) * out_channels_ * sizeof(float));
  Tensor& out = arena_->tensor(out_slot_, {n, out_channels_, ho, wo},
                               Arena::Fill::kZero);
  for (int img = 0; img < n; ++img) {
    for (int oy = 0; oy < ho; ++oy) {
      for (int ox = 0; ox < wo; ++ox) {
        const float* src =
            y_rows.data() +
            (static_cast<std::size_t>(img) * ho * wo + oy * wo + ox) *
                out_channels_;
        for (int o = 0; o < out_channels_; ++o) {
          out.data()[((static_cast<std::size_t>(img) * out_channels_ + o) *
                          ho +
                      oy) *
                         wo +
                     ox] = src[o];
        }
      }
    }
  }
  if (fused) {
    // The seed ran a separate LeakyReLU layer here: one copy to cache the
    // pre-activation, one copy for the output, then an in-place pass.
    Tensor preact_cache = out;
    Tensor activated = out;
    (void)preact_cache;
    (void)activated;
    for (std::size_t i = 0; i < out.size(); ++i) {
      if (out[i] < 0.0f) out[i] *= slope_;
    }
  }
  return out;
}

Tensor& Conv2d::backward_reference(const Tensor& dy) {
  const int n = x_shape_[0];
  const int h = x_shape_[2];
  const int w = x_shape_[3];
  const int ho = out_size(h);
  const int wo = out_size(w);
  const int rows = n * ho * wo;
  const int patch = in_channels_ * 9;
  const bool fused = act_ == Act::kLeakyReLU;

#ifndef NDEBUG
  if (dy.layout() != Layout::kRowMajor) {
    throw std::logic_error(name_ + ": reference conv requires row-major dy");
  }
#endif

  // The seed's activation layer copied dy before masking, and the seed
  // conv allocated its gradient staging tensors per call.
  Tensor dy_masked = dy;
  if (fused) {
    float* dm = dy_masked.data();
    for (int img = 0; img < n; ++img) {
      for (int o = 0; o < out_channels_; ++o) {
        const std::size_t off =
            (static_cast<std::size_t>(img) * out_channels_ + o) * ho * wo;
        for (int t = 0; t < ho * wo; ++t) {
          const std::size_t row_index =
              (static_cast<std::size_t>(img) * ho * wo + t) * out_channels_ +
              o;
          if (mask_[row_index]) dm[off + t] *= slope_;
        }
      }
    }
  }
  std::vector<float> dy_rows(static_cast<std::size_t>(rows) * out_channels_);
  SMA_COUNT_N("nn.reorder_bytes",
              static_cast<std::size_t>(rows) * out_channels_ * sizeof(float));
  for (int img = 0; img < n; ++img) {
    for (int o = 0; o < out_channels_; ++o) {
      const float* plane =
          dy_masked.data() +
          (static_cast<std::size_t>(img) * out_channels_ + o) * ho * wo;
      for (int oy = 0; oy < ho; ++oy) {
        for (int ox = 0; ox < wo; ++ox) {
          dy_rows[(static_cast<std::size_t>(img) * ho * wo + oy * wo + ox) *
                      out_channels_ +
                  o] = plane[static_cast<std::size_t>(oy) * wo + ox];
        }
      }
    }
  }

  // dw += dy_rows^T * cols
  gemm_acc_tn(out_channels_, patch, rows, dy_rows.data(), ref_cols_.data(),
              dw_.data(), staging_scratch());
  for (int r = 0; r < rows; ++r) {
    const float* dyr =
        dy_rows.data() + static_cast<std::size_t>(r) * out_channels_;
    for (int o = 0; o < out_channels_; ++o) db_[o] += dyr[o];
  }

  // dcols = dy_rows * w  (the seed always computed the input gradient,
  // even for a network's first layer).
  std::vector<float> dcols(static_cast<std::size_t>(rows) * patch);
  gemm_ovr_nn(rows, patch, out_channels_, dy_rows.data(), weight().data(),
              dcols.data(), staging_scratch());

  // col2im. dx accumulates (+=): acquired zero-filled, the bytes of the
  // seed's freshly constructed tensor.
  Tensor& dx = arena_->tensor(dx_slot_, x_shape_, Arena::Fill::kZero);
  const float* col = dcols.data();
  for (int img = 0; img < n; ++img) {
    float* base =
        dx.data() + static_cast<std::size_t>(img) * in_channels_ * h * w;
    for (int oy = 0; oy < ho; ++oy) {
      for (int ox = 0; ox < wo; ++ox) {
        for (int c = 0; c < in_channels_; ++c) {
          float* plane = base + static_cast<std::size_t>(c) * h * w;
          for (int ky = 0; ky < 3; ++ky) {
            const int iy = oy * stride_ - 1 + ky;
            for (int kx = 0; kx < 3; ++kx) {
              const int ix = ox * stride_ - 1 + kx;
              float v = *col++;
              if (iy >= 0 && iy < h && ix >= 0 && ix < w) {
                plane[static_cast<std::size_t>(iy) * w + ix] += v;
              }
            }
          }
        }
      }
    }
  }
  return dx;
}

void Conv2d::collect_params(std::vector<Param>& out) {
  out.push_back({name_ + ".w", &w_, &dw_});
  out.push_back({name_ + ".b", &b_, &db_});
}

void Conv2d::share_weights_from(const Conv2d& master) {
  shared_w_ = &master.weight();
  shared_b_ = &master.bias();
  w_ = Tensor();
  b_ = Tensor();
}

// --------------------------------------------------------------------
// GlobalAvgPool

void GlobalAvgPool::bind_arena(Arena& arena) {
  arena_ = &arena;
  y_slot_ = arena.add_tensor();
  dx_slot_ = arena.add_tensor();
}

void GlobalAvgPool::ensure_arena() {
  if (arena_ == nullptr) bind_arena(fallback_arena());
}

Tensor& GlobalAvgPool::forward(const Tensor& x) {
  ensure_arena();
  x_shape_ = x.shape();
  x_layout_ = x.layout();
  const int n = x_shape_[0];
  const int c = x_shape_[1];
  const int hw = x_shape_[2] * x_shape_[3];
  const bool cm = x_layout_ == Layout::kChannelMajor;
  // y: full overwrite — one store per (img, ch). Each (img, ch) plane is
  // reduced independently in ascending-i order, so the per-element sum
  // chain — and therefore the result bits — is identical under either
  // input layout; only the plane base offset dispatches on the tag. The
  // output is a row-major [n, c] matrix: this is the conv trunk's
  // natural seam into the fc head, at zero conversion cost.
  Tensor& y = arena_->tensor(y_slot_, {n, c}, Arena::Fill::kNone);
  for (int img = 0; img < n; ++img) {
    for (int ch = 0; ch < c; ++ch) {
      const float* plane =
          x.data() + (cm ? (static_cast<std::size_t>(ch) * n + img)
                         : (static_cast<std::size_t>(img) * c + ch)) *
                         hw;
      float acc = 0.0f;
      for (int i = 0; i < hw; ++i) acc += plane[i];
      y.data()[static_cast<std::size_t>(img) * c + ch] = acc / hw;
    }
  }
  return y;
}

Tensor& GlobalAvgPool::backward(const Tensor& dy) {
  ensure_arena();
#ifndef NDEBUG
  if (dy.layout() != Layout::kRowMajor) {
    throw std::logic_error("GlobalAvgPool requires row-major dy");
  }
#endif
  const int n = x_shape_[0];
  const int c = x_shape_[1];
  const int hw = x_shape_[2] * x_shape_[3];
  const bool cm = x_layout_ == Layout::kChannelMajor;
  // dx: full overwrite — every plane element is assigned. Produced in the
  // SAME layout the forward input had, so the gradient re-enters the conv
  // trunk with no reorder.
  Tensor& dx =
      arena_->tensor(dx_slot_, x_shape_, Arena::Fill::kNone, x_layout_);
  for (int img = 0; img < n; ++img) {
    for (int ch = 0; ch < c; ++ch) {
      const float g =
          dy.data()[static_cast<std::size_t>(img) * c + ch] / hw;
      float* plane =
          dx.data() + (cm ? (static_cast<std::size_t>(ch) * n + img)
                          : (static_cast<std::size_t>(img) * c + ch)) *
                          hw;
      for (int i = 0; i < hw; ++i) plane[i] = g;
    }
  }
  return dx;
}

// --------------------------------------------------------------------
// ResBlock

ResBlock::ResBlock(int width, util::Pcg32& rng, const std::string& name)
    : fc1_(width, width, rng, name + ".fc1", Act::kLeakyReLU),
      fc2_(width, width, rng, name + ".fc2", Act::kLeakyReLU),
      fc3_(width, width, rng, name + ".fc3", Act::kLeakyReLU) {}

void ResBlock::bind_arena(Arena& arena) {
  fc1_.bind_arena(arena);
  fc2_.bind_arena(arena);
  fc3_.bind_arena(arena);
}

Tensor& ResBlock::forward(const Tensor& x) {
  Tensor& h1 = fc1_.forward(x);
  Tensor& h2 = fc2_.forward(h1);
  // The residual add mutates fc3_'s output slot in place — we own it, and
  // it is consumed by the caller before fc3_ runs again.
  Tensor& h = fc3_.forward(h2);
  for (std::size_t i = 0; i < h.size(); ++i) h[i] += x[i];
  return h;
}

Tensor& ResBlock::backward(const Tensor& dy) {
  Tensor& d3 = fc3_.backward(dy);
  Tensor& d2 = fc2_.backward(d3);
  Tensor& dh = fc1_.backward(d2);
  for (std::size_t i = 0; i < dh.size(); ++i) dh[i] += dy[i];
  return dh;
}

void ResBlock::collect_params(std::vector<Param>& out) {
  fc1_.collect_params(out);
  fc2_.collect_params(out);
  fc3_.collect_params(out);
}

void ResBlock::share_weights_from(const ResBlock& master) {
  fc1_.share_weights_from(master.fc1_);
  fc2_.share_weights_from(master.fc2_);
  fc3_.share_weights_from(master.fc3_);
}

}  // namespace sma::nn
