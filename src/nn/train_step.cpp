#include "nn/train_step.hpp"

#include <cstring>
#include <stdexcept>
#include <string>

#include "obs/obs.hpp"
#include "runtime/parallel.hpp"

namespace sma::nn {

TrainStep::TrainStep(std::vector<Param> master, const AdamConfig& config)
    : master_(std::move(master)), adam_(master_, config) {}

void TrainStep::attach_lanes(std::vector<std::vector<Param>> lanes,
                             bool broadcast) {
  for (const std::vector<Param>& lane : lanes) {
    if (lane.size() != master_.size()) {
      throw std::invalid_argument(
          "TrainStep: lane params not aligned with master params");
    }
  }
  lanes_ = std::move(lanes);
  broadcast_ = broadcast;
}

void TrainStep::accumulate(const std::vector<Param>& lane) {
  if (lane.size() != master_.size()) {
    throw std::invalid_argument(
        "TrainStep: lane params not aligned with master params");
  }
  for (std::size_t k = 0; k < master_.size(); ++k) {
    float* master_grad = master_[k].grad->data();
    float* lane_grad = lane[k].grad->data();
    const std::size_t size = master_[k].grad->size();
    for (std::size_t j = 0; j < size; ++j) {
      master_grad[j] += lane_grad[j];
      lane_grad[j] = 0.0f;
    }
  }
}

void TrainStep::step(int active_lanes, runtime::ThreadPool* pool) {
  if (active_lanes < 0) {
    // A negative count is always a caller bug (a miscomputed partial
    // batch); silently clamping it to 0 would run a spurious Adam step on
    // zero gradients. Throw, matching the alignment checks above.
    throw std::invalid_argument("TrainStep::step: negative active_lanes " +
                                std::to_string(active_lanes));
  }
  SMA_TRACE_SPAN_V("nn", "train_step", active_lanes);
  SMA_COUNT("nn.train_steps");
  if (lanes_.empty()) {
    adam_.step(pool);
    return;
  }
  const std::size_t active =
      static_cast<std::size_t>(active_lanes) < lanes_.size()
          ? static_cast<std::size_t>(active_lanes)
          : lanes_.size();
  const Adam::StepScales scales = adam_.begin_step();
  runtime::parallel_for(
      pool, 0, master_.size(), /*grain=*/4, [&](std::size_t k) {
        // (1) Reduce: add lane gradients in lane order — the order (hence
        // the float sum) depends only on the lane count, never on
        // scheduling.
        float* master_grad = master_[k].grad->data();
        const std::size_t size = master_[k].grad->size();
        for (std::size_t l = 0; l < active; ++l) {
          float* lane = lanes_[l][k].grad->data();
          for (std::size_t j = 0; j < size; ++j) {
            master_grad[j] += lane[j];
            lane[j] = 0.0f;
          }
        }
        // (2) Adam update for this parameter, while its state is hot.
        adam_.update_param(k, scales);
        // (3) Broadcast to lanes owning private weights (no-op for
        // shared-weight lanes, whose reads alias the master's storage).
        if (broadcast_) {
          const float* master_value = master_[k].value->data();
          const std::size_t bytes = master_[k].value->size() * sizeof(float);
          for (std::size_t l = 0; l < lanes_.size(); ++l) {
            std::memcpy(lanes_[l][k].value->data(), master_value, bytes);
          }
        }
      });
}

}  // namespace sma::nn
