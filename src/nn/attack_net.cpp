#include "nn/attack_net.hpp"

#include <cstring>
#include <istream>
#include <optional>
#include <ostream>
#include <stdexcept>

namespace sma::nn {

NetConfig NetConfig::paper() { return NetConfig{}; }

NetConfig NetConfig::fast() {
  NetConfig config;
  config.conv_channels = {8, 16, 32, 64};
  return config;
}

AttackNet::AttackNet(const NetConfig& config) : config_(config) {
  util::Pcg32 rng(config_.seed, 0xa77ac);

  fc1_ = std::make_unique<Linear>(config_.vector_dim, config_.hidden, rng,
                                  "fc1", Act::kLeakyReLU);
  for (int i = 0; i < config_.vector_res_blocks; ++i) {
    vec_blocks_.emplace_back(config_.hidden, rng,
                             "vec_res" + std::to_string(i));
  }

  if (config_.use_images) {
    int in_ch = config_.image_channels;
    for (int group = 0; group < 4; ++group) {
      const int out_ch = config_.conv_channels[group];
      for (int layer = 0; layer < 3; ++layer) {
        // Groups 2..4 downsample (stride 3) in their first conv; the first
        // group keeps full resolution (Table 2: conv1 output 99x99).
        const int stride = (group > 0 && layer == 0) ? 3 : 1;
        convs_.emplace_back(in_ch, out_ch, stride, rng,
                            "conv" + std::to_string(group + 1) + "_" +
                                std::to_string(layer),
                            Act::kLeakyReLU);
        in_ch = out_ch;
      }
    }
    // Nothing consumes the gradient w.r.t. the input images; the first
    // conv can skip its dX (dcols + col2im) entirely.
    convs_.front().set_compute_input_grad(false);
    fc3_ = std::make_unique<Linear>(config_.conv_channels[3],
                                    config_.image_fc, rng, "fc3",
                                    Act::kLeakyReLU);
    fc4_ = std::make_unique<Linear>(config_.image_fc, config_.hidden, rng,
                                    "fc4", Act::kLeakyReLU);
    fc5_img_ = std::make_unique<Linear>(2 * config_.hidden, config_.hidden,
                                        rng, "fc5_img", Act::kLeakyReLU);
  }

  const int merged_in =
      config_.use_images ? 2 * config_.hidden : config_.hidden;
  fc5_merged_ = std::make_unique<Linear>(merged_in, config_.hidden, rng,
                                         "fc5_merged", Act::kLeakyReLU);
  for (int i = 0; i < config_.merged_res_blocks; ++i) {
    merged_blocks_.emplace_back(config_.hidden, rng,
                                "merged_res" + std::to_string(i));
  }
  fc6_ = std::make_unique<Linear>(config_.hidden, config_.fc6_width, rng,
                                  "fc6", Act::kLeakyReLU);
  fc7_ = std::make_unique<Linear>(config_.fc6_width,
                                  config_.two_class ? 2 : 1, rng, "fc7");

  // Bind every layer to this network's activation arena — strictly after
  // all layer containers are fully built, since binding caches layer
  // addresses into the arena-backed hot path and vector growth would
  // relocate them. The arena lives behind a unique_ptr, so moving the
  // AttackNet moves the pointer and invalidates nothing.
  arena_ = std::make_unique<Arena>();
  fc1_->bind_arena(*arena_);
  for (ResBlock& block : vec_blocks_) block.bind_arena(*arena_);
  if (config_.use_images) {
    for (Conv2d& conv : convs_) conv.bind_arena(*arena_);
    pool_.bind_arena(*arena_);
    fc3_->bind_arena(*arena_);
    fc4_->bind_arena(*arena_);
    fc5_img_->bind_arena(*arena_);
  }
  fc5_merged_->bind_arena(*arena_);
  for (ResBlock& block : merged_blocks_) block.bind_arena(*arena_);
  fc6_->bind_arena(*arena_);
  fc7_->bind_arena(*arena_);
  fused_slot_ = arena_->add_tensor();
  merged_slot_ = arena_->add_tensor();
  dv_slot_ = arena_->add_tensor();
  dimg_slot_ = arena_->add_tensor();
  demb_slot_ = arena_->add_tensor();
}

const Tensor& AttackNet::forward(const QueryInput& input) {
  const int n = input.vec.shape().size() == 2 ? input.vec.dim(0) : 0;
  return forward_impl(input.vec, input.images, &n, 1);
}

const Tensor& AttackNet::forward_batched(const BatchedQueryInput& input) {
  if (input.query_rows.empty()) {
    throw std::invalid_argument("forward_batched: empty batch");
  }
  return forward_impl(input.vec, input.images, input.query_rows.data(),
                      static_cast<int>(input.query_rows.size()));
}

const Tensor& AttackNet::forward_impl(const Tensor& vec, const Tensor& images,
                                      const int* query_rows,
                                      int num_queries) {
  if (vec.shape().size() != 2 || vec.dim(1) != config_.vector_dim) {
    throw std::invalid_argument("bad vector input " + vec.shape_string());
  }
  // Row/plane accounting. A query with no candidates contributes neither
  // vector rows nor image planes (its caller answers it without the net);
  // the single-query path keeps its legacy shape contract exactly.
  int rows = 0;
  int planes = 0;
  for (int q = 0; q < num_queries; ++q) {
    const int nq = query_rows[q];
    if (nq < 0) {
      throw std::invalid_argument("negative candidate count in batch");
    }
    rows += nq;
    if (nq > 0 || num_queries == 1) planes += nq + 1;
  }
  if (num_queries > 1 && rows == 0) {
    throw std::invalid_argument(
        "forward_batched: batch has no candidate rows");
  }
  if (vec.dim(0) != rows) {
    throw std::invalid_argument(
        "bad vector input " + vec.shape_string() + ": batch promises " +
        std::to_string(rows) + " candidate rows");
  }
  n_ = rows;
  batched_ = num_queries != 1;
  const int h = config_.hidden;

  // Layer outputs are arena slots: the chains below thread references
  // through them without copying (each layer's slot stays valid until
  // that layer's next call).

  // --- vector branch
  const Tensor* v = &fc1_->forward(vec);
  for (ResBlock& block : vec_blocks_) v = &block.forward(*v);

  const Tensor* merged_in = nullptr;
  if (config_.use_images) {
    if (images.shape().size() != 4 || images.dim(0) != planes ||
        images.dim(1) != config_.image_channels) {
      throw std::invalid_argument("bad image input " +
                                  images.shape_string());
    }
    // --- shared conv trunk over every query's n_q source images + 1 sink
    // image, all stacked. One layout contract binds the trunk: the
    // dataset input is the first row-major seam (conv1's pack path reads
    // NCHW natively), the trunk's activations then stay in whatever
    // layout the conv pipeline produces (channel-major by default — each
    // layer's tag travels with its slot), and GlobalAvgPool is the second
    // and last seam, reducing to a row-major [planes, h] matrix for the
    // fc head at zero conversion cost. Nothing between the seams may
    // assume row-major storage.
    const Tensor* x = &images;
    for (Conv2d& conv : convs_) x = &conv.forward(*x);
    x = &pool_.forward(*x);
#ifndef NDEBUG
    if (x->layout() != Layout::kRowMajor) {
      throw std::logic_error("pool output must be the row-major fc seam");
    }
#endif
    x = &fc3_->forward(*x);
    x = &fc4_->forward(*x);  // [planes, h]

    // --- fuse each source embedding with its query's (shared) sink
    // embedding (full overwrite: two memcpys cover each row). The seam is
    // batch-strided: query q's candidates read x rows [m, m + n_q) and
    // its sink row m + n_q, writing fused rows [r, r + n_q).
    Tensor& fused =
        arena_->tensor(fused_slot_, {rows, 2 * h}, Arena::Fill::kNone);
    int r = 0;
    int m = 0;
    for (int q = 0; q < num_queries; ++q) {
      const int nq = query_rows[q];
      if (nq == 0 && num_queries > 1) continue;
      const float* sink_row =
          x->data() + static_cast<std::size_t>(m + nq) * h;
      for (int j = 0; j < nq; ++j) {
        std::memcpy(
            fused.data() + static_cast<std::size_t>(r + j) * 2 * h,
            x->data() + static_cast<std::size_t>(m + j) * h,
            sizeof(float) * h);
        std::memcpy(
            fused.data() + static_cast<std::size_t>(r + j) * 2 * h + h,
            sink_row, sizeof(float) * h);
      }
      r += nq;
      m += nq + 1;
    }
    const Tensor& img_out = fc5_img_->forward(fused);  // [rows, h]

    // --- concat vector and image embeddings (full overwrite; both sides
    // are already in stacked candidate-row order, so the seam is
    // query-agnostic)
    Tensor& merged =
        arena_->tensor(merged_slot_, {rows, 2 * h}, Arena::Fill::kNone);
    for (int j = 0; j < rows; ++j) {
      std::memcpy(merged.data() + static_cast<std::size_t>(j) * 2 * h,
                  v->data() + static_cast<std::size_t>(j) * h,
                  sizeof(float) * h);
      std::memcpy(merged.data() + static_cast<std::size_t>(j) * 2 * h + h,
                  img_out.data() + static_cast<std::size_t>(j) * h,
                  sizeof(float) * h);
    }
    merged_in = &merged;
  } else {
    merged_in = v;
  }

  const Tensor* m = &fc5_merged_->forward(*merged_in);
  for (ResBlock& block : merged_blocks_) m = &block.forward(*m);
  m = &fc6_->forward(*m);
  Tensor& scores = fc7_->forward(*m);  // [rows, 1] or [rows, 2]
  if (!config_.two_class) {
    scores.reshape({n_});
  }
  return scores;
}

void AttackNet::backward(const Tensor& dscores) {
  if (batched_) {
    throw std::logic_error(
        "AttackNet::backward after forward_batched: the batched pass is "
        "inference-only");
  }
  const int h = config_.hidden;
  // The seed copied dscores only to flatten [n] into [n, 1]; Linear's
  // backward derives its row count from size()/out and never reads the
  // shape, so dscores feeds fc7 directly — same bytes, no copy.
  const Tensor* d = &fc7_->backward(dscores);
  d = &fc6_->backward(*d);
  for (auto it = merged_blocks_.rbegin(); it != merged_blocks_.rend(); ++it) {
    d = &it->backward(*d);
  }
  const Tensor& dmerged_in = fc5_merged_->backward(*d);

  const Tensor* dv = nullptr;
  if (config_.use_images) {
    // Split the merged gradient into vector and image halves (both full
    // overwrite). dv lives on this net's own slot so it survives the
    // whole image-branch backward below.
    Tensor& dv_half = arena_->tensor(dv_slot_, {n_, h}, Arena::Fill::kNone);
    Tensor& dimg = arena_->tensor(dimg_slot_, {n_, h}, Arena::Fill::kNone);
    for (int j = 0; j < n_; ++j) {
      std::memcpy(dv_half.data() + static_cast<std::size_t>(j) * h,
                  dmerged_in.data() + static_cast<std::size_t>(j) * 2 * h,
                  sizeof(float) * h);
      std::memcpy(dimg.data() + static_cast<std::size_t>(j) * h,
                  dmerged_in.data() + static_cast<std::size_t>(j) * 2 * h + h,
                  sizeof(float) * h);
    }

    const Tensor& dfused = fc5_img_->backward(dimg);  // [n, 2h]
    // Reassemble per-image embedding gradients; the sink row accumulates
    // (+=) the second half of every fused row, so the slot is acquired
    // zero-filled — the bytes of the seed's fresh tensor.
    Tensor& demb =
        arena_->tensor(demb_slot_, {n_ + 1, h}, Arena::Fill::kZero);
    float* sink_grad = demb.data() + static_cast<std::size_t>(n_) * h;
    for (int j = 0; j < n_; ++j) {
      std::memcpy(demb.data() + static_cast<std::size_t>(j) * h,
                  dfused.data() + static_cast<std::size_t>(j) * 2 * h,
                  sizeof(float) * h);
      const float* second =
          dfused.data() + static_cast<std::size_t>(j) * 2 * h + h;
      for (int k = 0; k < h; ++k) sink_grad[k] += second[k];
    }

    // Backward mirrors the forward layout contract: the fc gradients are
    // row-major down to the pool seam, pool re-enters the trunk in the
    // layout its forward input had, and each conv hands its predecessor
    // a dx in that predecessor's own output layout — no reorder anywhere.
    const Tensor* dx = &fc4_->backward(demb);
    dx = &fc3_->backward(*dx);
    dx = &pool_.backward(*dx);
    for (std::size_t i = convs_.size(); i-- > 0;) {
      dx = &convs_[i].backward(*dx);
    }
    dv = &dv_half;
  } else {
    dv = &dmerged_in;
  }

  for (auto it = vec_blocks_.rbegin(); it != vec_blocks_.rend(); ++it) {
    dv = &it->backward(*dv);
  }
  fc1_->backward(*dv);
}

std::vector<Param> AttackNet::params() {
  std::vector<Param> out;
  fc1_->collect_params(out);
  for (ResBlock& block : vec_blocks_) block.collect_params(out);
  if (config_.use_images) {
    for (Conv2d& conv : convs_) conv.collect_params(out);
    fc3_->collect_params(out);
    fc4_->collect_params(out);
    fc5_img_->collect_params(out);
  }
  fc5_merged_->collect_params(out);
  for (ResBlock& block : merged_blocks_) block.collect_params(out);
  fc6_->collect_params(out);
  fc7_->collect_params(out);
  return out;
}

std::size_t AttackNet::num_parameters() {
  std::size_t total = 0;
  for (const Param& p : params()) total += p.value->size();
  return total;
}

namespace {

constexpr std::uint32_t kMagic = 0x534d4131;  // "SMA1"

template <typename T>
void write_pod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::istream& in) {
  T value;
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) throw ModelLoadError("model file truncated");
  return value;
}

/// Header field validation: a load must reject hostile or garbage header
/// values *before* they reach tensor allocation (a multi-gigabyte
/// "hidden width" would otherwise surface as bad_alloc — or worse,
/// succeed and materialize garbage tensors).
int checked_field(int value, const char* name, int lo, int hi) {
  if (value < lo || value > hi) {
    throw ModelLoadError("model header field " + std::string(name) + " = " +
                         std::to_string(value) + " outside sane range [" +
                         std::to_string(lo) + ", " + std::to_string(hi) + "]");
  }
  return value;
}

bool checked_flag(int value, const char* name) {
  if (value != 0 && value != 1) {
    throw ModelLoadError("model header flag " + std::string(name) + " = " +
                         std::to_string(value) + " is not a boolean");
  }
  return value != 0;
}

/// Bytes left on a seekable stream; nullopt for pipes and the like.
std::optional<std::uint64_t> remaining_bytes(std::istream& in) {
  const std::istream::pos_type here = in.tellg();
  if (here == std::istream::pos_type(-1)) return std::nullopt;
  in.seekg(0, std::ios::end);
  const std::istream::pos_type end = in.tellg();
  in.seekg(here);
  if (end == std::istream::pos_type(-1) || end < here) return std::nullopt;
  return static_cast<std::uint64_t>(end - here);
}

}  // namespace

void AttackNet::save(std::ostream& out) {
  write_pod(out, kMagic);
  write_pod(out, config_.vector_dim);
  write_pod(out, config_.hidden);
  write_pod(out, config_.vector_res_blocks);
  write_pod(out, config_.merged_res_blocks);
  write_pod(out, static_cast<int>(config_.use_images));
  write_pod(out, config_.image_channels);
  for (int ch : config_.conv_channels) write_pod(out, ch);
  write_pod(out, config_.image_fc);
  write_pod(out, config_.fc6_width);
  write_pod(out, static_cast<int>(config_.two_class));
  write_pod(out, config_.seed);
  if (!out) {
    throw std::runtime_error("AttackNet::save: writing model header failed");
  }

  for (const Param& p : params()) {
    write_pod(out, static_cast<std::uint64_t>(p.value->size()));
    out.write(reinterpret_cast<const char*>(p.value->data()),
              static_cast<std::streamsize>(p.value->size() * sizeof(float)));
    // A full disk or closed stream would otherwise return silently here,
    // leaving a truncated file that only load() can diagnose — much later.
    if (!out) {
      throw std::runtime_error("AttackNet::save: writing " + p.name +
                               " failed (stream error or disk full)");
    }
  }
}

AttackNet AttackNet::clone() {
  AttackNet copy(config_);
  std::vector<Param> source = params();
  std::vector<Param> target = copy.params();
  for (std::size_t i = 0; i < source.size(); ++i) {
    std::memcpy(target[i].value->data(), source[i].value->data(),
                source[i].value->size() * sizeof(float));
  }
  return copy;
}

AttackNet AttackNet::clone_shared() {
  // The plain constructor random-initializes weights that
  // share_weights_from immediately frees — wasted work, but it keeps one
  // construction path for every layer (no uninitialized-weight ctor
  // variants to drift), and it runs once per pinned replica, not per
  // step or per attack() call. Revisit if replica churn ever shows up in
  // a profile.
  AttackNet copy(config_);
  copy.fc1_->share_weights_from(*fc1_);
  for (std::size_t i = 0; i < vec_blocks_.size(); ++i) {
    copy.vec_blocks_[i].share_weights_from(vec_blocks_[i]);
  }
  if (config_.use_images) {
    for (std::size_t i = 0; i < convs_.size(); ++i) {
      copy.convs_[i].share_weights_from(convs_[i]);
    }
    copy.fc3_->share_weights_from(*fc3_);
    copy.fc4_->share_weights_from(*fc4_);
    copy.fc5_img_->share_weights_from(*fc5_img_);
  }
  copy.fc5_merged_->share_weights_from(*fc5_merged_);
  for (std::size_t i = 0; i < merged_blocks_.size(); ++i) {
    copy.merged_blocks_[i].share_weights_from(merged_blocks_[i]);
  }
  copy.fc6_->share_weights_from(*fc6_);
  copy.fc7_->share_weights_from(*fc7_);
  return copy;
}

AttackNet AttackNet::load(std::istream& in) {
  if (read_pod<std::uint32_t>(in) != kMagic) {
    throw ModelLoadError("not an AttackNet model file");
  }
  // Bounds: generous enough for any configuration this repo can train
  // (paper config: hidden 128, channels ≤ 128), tight enough that a
  // corrupt or hostile header can never request pathological allocations.
  constexpr int kMaxWidth = 1 << 20;
  constexpr int kMaxBlocks = 4096;
  NetConfig config;
  config.vector_dim = checked_field(read_pod<int>(in), "vector_dim", 1,
                                    kMaxWidth);
  config.hidden = checked_field(read_pod<int>(in), "hidden", 1, kMaxWidth);
  config.vector_res_blocks = checked_field(
      read_pod<int>(in), "vector_res_blocks", 0, kMaxBlocks);
  config.merged_res_blocks = checked_field(
      read_pod<int>(in), "merged_res_blocks", 0, kMaxBlocks);
  config.use_images = checked_flag(read_pod<int>(in), "use_images");
  config.image_channels = checked_field(read_pod<int>(in), "image_channels",
                                        1, 1024);
  for (int& ch : config.conv_channels) {
    ch = checked_field(read_pod<int>(in), "conv_channels", 1, kMaxWidth);
  }
  config.image_fc = checked_field(read_pod<int>(in), "image_fc", 1,
                                  kMaxWidth);
  config.fc6_width = checked_field(read_pod<int>(in), "fc6_width", 1,
                                   kMaxWidth);
  config.two_class = checked_flag(read_pod<int>(in), "two_class");
  config.seed = read_pod<std::uint64_t>(in);

  // On seekable streams, reject a stream that cannot possibly hold the
  // weight section before constructing the network — construction
  // allocates every weight tensor up front. The cheap pre-construction
  // bound is the first layer (fc1: vector_dim x hidden floats plus its
  // bias); the exact per-parameter sizes are re-checked against the
  // stream as they are read.
  const std::optional<std::uint64_t> remaining = remaining_bytes(in);
  if (remaining.has_value()) {
    const std::uint64_t fc1_bytes =
        (static_cast<std::uint64_t>(config.vector_dim) * config.hidden +
         config.hidden) *
        sizeof(float);
    if (*remaining < fc1_bytes) {
      throw ModelLoadError("model file truncated: header promises at least " +
                           std::to_string(fc1_bytes) + " weight bytes, " +
                           std::to_string(*remaining) + " present");
    }
  }

  AttackNet net(config);
  std::uint64_t consumed = 0;
  for (const Param& p : net.params()) {
    auto count = read_pod<std::uint64_t>(in);
    consumed += sizeof(count);
    if (count != p.value->size()) {
      throw ModelLoadError("model shape mismatch for " + p.name +
                           ": file has " + std::to_string(count) +
                           " floats, expected " +
                           std::to_string(p.value->size()));
    }
    consumed += count * sizeof(float);
    if (remaining.has_value() && consumed > *remaining) {
      throw ModelLoadError("model file truncated: " + p.name + " needs " +
                           std::to_string(consumed) + " weight bytes, " +
                           std::to_string(*remaining) + " present");
    }
    in.read(reinterpret_cast<char*>(p.value->data()),
            static_cast<std::streamsize>(count * sizeof(float)));
    if (!in) throw ModelLoadError("model file truncated in " + p.name);
  }
  return net;
}

}  // namespace sma::nn
