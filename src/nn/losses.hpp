// Loss functions (Sec. 4.3 of the paper).
//
// `softmax_regression_loss` is the paper's proposed loss (Eq. 6): one
// score per candidate VPP, softmax over the batch of n candidates, and
// the negative log-likelihood of the true connection. Its gradient (Eq. 7)
// weighs high-scoring negatives exponentially and balances positive and
// negative contributions.
//
// `two_class_loss` is the conventional per-candidate two-class
// classification baseline (Eq. 3) the paper argues against; it is kept for
// the Figure-5 ablation. Scores are [n, 2] = (non-connection, connection).
#pragma once

#include <utility>

#include "nn/tensor.hpp"

namespace sma::nn {

struct LossResult {
  double loss = 0.0;
  Tensor grad;  ///< same shape as the scores
};

/// Scores [n] or [n, 1]; `target` is the positive candidate index.
LossResult softmax_regression_loss(const Tensor& scores, int target);

/// Scores [n, 2]; column 0 = s^-, column 1 = s^+; `target` is the positive
/// candidate index.
LossResult two_class_loss(const Tensor& scores, int target);

/// Index of the predicted connection. For [n] scores: argmax. For [n, 2]
/// scores: argmax of (s^+ - s^-), Eq. (2) adapted to the two-class head.
int predict(const Tensor& scores);

/// `predict` over a raw row span of a batched score matrix
/// (AttackNet::forward_batched): `scores` points at one query's first
/// score, `n` is its candidate count, `cols` is 1 (Eq. 2 head) or 2
/// (two-class head). Identical comparison chain to the Tensor overload,
/// so batched and batch-1 predictions agree whenever the scores do.
int predict(const float* scores, int n, int cols);

}  // namespace sma::nn
