#include "nn/losses.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sma::nn {

namespace {

int candidate_count(const Tensor& scores) {
  if (scores.shape().empty()) throw std::invalid_argument("empty scores");
  return scores.dim(0);
}

}  // namespace

LossResult softmax_regression_loss(const Tensor& scores, int target) {
  const int n = candidate_count(scores);
  if (static_cast<std::size_t>(n) != scores.size()) {
    throw std::invalid_argument("softmax loss expects one score per VPP");
  }
  if (target < 0 || target >= n) {
    throw std::invalid_argument("target out of range");
  }

  // Numerically stable softmax.
  float max_score = scores[0];
  for (int j = 1; j < n; ++j) max_score = std::max(max_score, scores[j]);
  double denom = 0.0;
  for (int j = 0; j < n; ++j) {
    denom += std::exp(static_cast<double>(scores[j] - max_score));
  }

  LossResult result;
  result.grad = Tensor(scores.shape());
  for (int j = 0; j < n; ++j) {
    double p = std::exp(static_cast<double>(scores[j] - max_score)) / denom;
    result.grad[j] = static_cast<float>(p - (j == target ? 1.0 : 0.0));
  }
  double pt = std::exp(static_cast<double>(scores[target] - max_score)) / denom;
  result.loss = -std::log(std::max(pt, 1e-30));
  return result;
}

LossResult two_class_loss(const Tensor& scores, int target) {
  if (scores.shape().size() != 2 || scores.dim(1) != 2) {
    throw std::invalid_argument("two-class loss expects [n, 2] scores");
  }
  const int n = scores.dim(0);
  if (target < 0 || target >= n) {
    throw std::invalid_argument("target out of range");
  }

  LossResult result;
  result.grad = Tensor(scores.shape());
  double total = 0.0;
  for (int j = 0; j < n; ++j) {
    const double s_neg = scores[static_cast<std::size_t>(j) * 2 + 0];
    const double s_pos = scores[static_cast<std::size_t>(j) * 2 + 1];
    // Two-way softmax probability of the labelled class.
    const double m = std::max(s_neg, s_pos);
    const double e_neg = std::exp(s_neg - m);
    const double e_pos = std::exp(s_pos - m);
    const double z = e_neg + e_pos;
    const double p_pos = e_pos / z;
    const bool positive = j == target;
    const double p_label = positive ? p_pos : 1.0 - p_pos;
    total += -std::log(std::max(p_label, 1e-30));
    // d/ds of -log softmax(label): p - one_hot(label), scaled by 1/n.
    const double y_pos = positive ? 1.0 : 0.0;
    result.grad[static_cast<std::size_t>(j) * 2 + 1] =
        static_cast<float>((p_pos - y_pos) / n);
    result.grad[static_cast<std::size_t>(j) * 2 + 0] =
        static_cast<float>(((1.0 - p_pos) - (1.0 - y_pos)) / n);
  }
  result.loss = total / n;
  return result;
}

int predict(const Tensor& scores) {
  const int n = candidate_count(scores);
  const int cols =
      scores.shape().size() == 2 && scores.dim(1) == 2 ? 2 : 1;
  return predict(scores.data(), n, cols);
}

int predict(const float* scores, int n, int cols) {
  if (n == 0) return -1;
  if (cols == 2) {
    int best = 0;
    float best_margin = scores[1] - scores[0];
    for (int j = 1; j < n; ++j) {
      float margin = scores[static_cast<std::size_t>(j) * 2 + 1] -
                     scores[static_cast<std::size_t>(j) * 2 + 0];
      if (margin > best_margin) {
        best_margin = margin;
        best = j;
      }
    }
    return best;
  }
  if (cols != 1) throw std::invalid_argument("predict: cols must be 1 or 2");
  int best = 0;
  for (int j = 1; j < n; ++j) {
    if (scores[j] > scores[best]) best = j;
  }
  return best;
}

}  // namespace sma::nn
