#include "nn/optimizer.hpp"

#include <cmath>

#include "runtime/parallel.hpp"

namespace sma::nn {

Adam::Adam(std::vector<Param> params, const AdamConfig& config)
    : params_(std::move(params)), config_(config), lr_(config.lr) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const Param& p : params_) {
    m_.emplace_back(p.value->size(), 0.0f);
    v_.emplace_back(p.value->size(), 0.0f);
  }
}

Adam::StepScales Adam::begin_step() {
  ++t_;
  return StepScales{1.0 - std::pow(config_.beta1, t_),
                    1.0 - std::pow(config_.beta2, t_)};
}

void Adam::update_param(std::size_t i, const StepScales& scales) {
  Tensor& value = *params_[i].value;
  Tensor& grad = *params_[i].grad;
  std::vector<float>& m = m_[i];
  std::vector<float>& v = v_[i];
  for (std::size_t j = 0; j < value.size(); ++j) {
    const float g = grad[j];
    m[j] = static_cast<float>(config_.beta1 * m[j] +
                              (1.0 - config_.beta1) * g);
    v[j] = static_cast<float>(config_.beta2 * v[j] +
                              (1.0 - config_.beta2) * g * g);
    const double mh = m[j] / scales.bc1;
    const double vh = v[j] / scales.bc2;
    value[j] -=
        static_cast<float>(lr_ * mh / (std::sqrt(vh) + config_.eps));
    grad[j] = 0.0f;
  }
}

void Adam::step(runtime::ThreadPool* pool) {
  const StepScales scales = begin_step();
  runtime::parallel_for(pool, 0, params_.size(), /*grain=*/4,
                        [&](std::size_t i) { update_param(i, scales); });
}

void Adam::zero_grad() {
  for (Param& p : params_) p.grad->fill(0.0f);
}

void Adam::decay_lr() { lr_ *= config_.decay; }

std::size_t Adam::num_parameters() const {
  std::size_t total = 0;
  for (const Param& p : params_) total += p.value->size();
  return total;
}

}  // namespace sma::nn
