#include "nn/optimizer.hpp"

#include <cmath>
#include <cstdint>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>

#include "runtime/parallel.hpp"

namespace sma::nn {

Adam::Adam(std::vector<Param> params, const AdamConfig& config)
    : params_(std::move(params)), config_(config), lr_(config.lr) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const Param& p : params_) {
    m_.emplace_back(p.value->size(), 0.0f);
    v_.emplace_back(p.value->size(), 0.0f);
  }
}

Adam::StepScales Adam::begin_step() {
  ++t_;
  return StepScales{1.0 - std::pow(config_.beta1, t_),
                    1.0 - std::pow(config_.beta2, t_)};
}

void Adam::update_param(std::size_t i, const StepScales& scales) {
  Tensor& value = *params_[i].value;
  Tensor& grad = *params_[i].grad;
  std::vector<float>& m = m_[i];
  std::vector<float>& v = v_[i];
  for (std::size_t j = 0; j < value.size(); ++j) {
    const float g = grad[j];
    m[j] = static_cast<float>(config_.beta1 * m[j] +
                              (1.0 - config_.beta1) * g);
    v[j] = static_cast<float>(config_.beta2 * v[j] +
                              (1.0 - config_.beta2) * g * g);
    const double mh = m[j] / scales.bc1;
    const double vh = v[j] / scales.bc2;
    value[j] -=
        static_cast<float>(lr_ * mh / (std::sqrt(vh) + config_.eps));
    grad[j] = 0.0f;
  }
}

void Adam::step(runtime::ThreadPool* pool) {
  const StepScales scales = begin_step();
  runtime::parallel_for(pool, 0, params_.size(), /*grain=*/4,
                        [&](std::size_t i) { update_param(i, scales); });
}

void Adam::zero_grad() {
  for (Param& p : params_) p.grad->fill(0.0f);
}

void Adam::decay_lr() { lr_ *= config_.decay; }

std::size_t Adam::num_parameters() const {
  std::size_t total = 0;
  for (const Param& p : params_) total += p.value->size();
  return total;
}

namespace {

template <typename T>
void write_pod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::istream& in, const char* what) {
  T value;
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) {
    throw std::runtime_error(std::string("Adam state truncated in ") + what);
  }
  return value;
}

}  // namespace

void Adam::serialize(std::ostream& out) const {
  write_pod(out, lr_);
  write_pod(out, static_cast<std::int64_t>(t_));
  write_pod(out, static_cast<std::uint64_t>(params_.size()));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    write_pod(out, static_cast<std::uint64_t>(m_[i].size()));
    out.write(reinterpret_cast<const char*>(m_[i].data()),
              static_cast<std::streamsize>(m_[i].size() * sizeof(float)));
    out.write(reinterpret_cast<const char*>(v_[i].data()),
              static_cast<std::streamsize>(v_[i].size() * sizeof(float)));
  }
  if (!out) throw std::runtime_error("Adam::serialize: stream write failed");
}

void Adam::deserialize(std::istream& in) {
  const double lr = read_pod<double>(in, "learning rate");
  const auto t = read_pod<std::int64_t>(in, "step counter");
  const auto count = read_pod<std::uint64_t>(in, "parameter count");
  if (count != params_.size()) {
    throw std::runtime_error("Adam state parameter count mismatch: state has " +
                             std::to_string(count) + ", optimizer has " +
                             std::to_string(params_.size()));
  }
  // Stage into scratch so a truncated stream leaves this optimizer intact.
  std::vector<std::vector<float>> m(params_.size());
  std::vector<std::vector<float>> v(params_.size());
  for (std::size_t i = 0; i < params_.size(); ++i) {
    const auto size = read_pod<std::uint64_t>(in, params_[i].name.c_str());
    if (size != m_[i].size()) {
      throw std::runtime_error("Adam state size mismatch for " +
                               params_[i].name + ": state has " +
                               std::to_string(size) + ", expected " +
                               std::to_string(m_[i].size()));
    }
    m[i].resize(static_cast<std::size_t>(size));
    v[i].resize(static_cast<std::size_t>(size));
    in.read(reinterpret_cast<char*>(m[i].data()),
            static_cast<std::streamsize>(size * sizeof(float)));
    in.read(reinterpret_cast<char*>(v[i].data()),
            static_cast<std::streamsize>(size * sizeof(float)));
    if (!in) {
      throw std::runtime_error("Adam state truncated in moments of " +
                               params_[i].name);
    }
  }
  lr_ = lr;
  t_ = t;
  m_ = std::move(m);
  v_ = std::move(v);
}

}  // namespace sma::nn
