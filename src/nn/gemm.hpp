// Shared GEMM kernel core for the attack network.
//
// All conv/dense layers lower onto three row-major GEMM forms (nn, tn,
// nt) plus a fused forward form with a bias + LeakyReLU epilogue. The
// optimized kernels are cache-blocked and register-tiled: B is packed
// once per call into K x kNr column panels, A into kMr x K row panels,
// and a kMr x kNr micro-kernel keeps the accumulators in registers.
//
// Bit-identity contract: for every output element C[i][j], the optimized
// kernels perform exactly the same sequence of float operations as the
// retained reference kernels — products are added one at a time in
// ascending-k order onto a single accumulator chain (no split partial
// sums, no reassociation). Packing and register tiling only change
// *where* operands live, never the arithmetic order, so optimized and
// reference results are identical to the last bit and the parallel
// runtime's serial == parallel determinism contract is untouched.
// `tests/test_kernels.cpp` enforces this on randomized shapes.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/tensor.hpp"

namespace sma::nn {

/// Reusable packing buffers. Purely transient within one GEMM call, so
/// callers normally share one instance per thread via `thread_scratch()`
/// — a private scratch per layer (times 8 lane replicas) would balloon
/// the training working set and thrash the cache.
struct GemmScratch {
  std::vector<float> a_panel;
  std::vector<float> b_panel;
};

/// The calling thread's shared scratch (grown on demand, never shrunk).
GemmScratch& thread_scratch();

/// Kernel dispatch: kBlocked is the optimized path, kReference the
/// retained naive kernels. The toggle exists for before/after
/// benchmarking (`bench_kernels`) and for the bit-identity tests; it is
/// not meant to be flipped while other threads are inside a kernel.
enum class KernelBackend { kBlocked, kReference };

void set_kernel_backend(KernelBackend backend);
KernelBackend kernel_backend();

/// Activation-layout dispatch for the blocked conv pipeline.
/// kChannelMajor (the default) has Conv2d write its GEMM output directly
/// into a channel-major arena slot and read channel-major input through
/// the pack_cm_* paths — no per-layer NCHW reorder, no staging copy.
/// kRowMajorCompat retains the PR-7 pipeline (GEMM into a staging buffer,
/// then a per-plane reorder into an NCHW slot) as the A/B baseline for
/// bench_kernels / bench_train; both modes are byte-identical in the
/// values they produce. Like KernelBackend, the toggle is for tests and
/// benches — not meant to be flipped while threads are inside a layer.
enum class ConvLayoutMode { kChannelMajor, kRowMajorCompat };

void set_conv_layout_mode(ConvLayoutMode mode);
ConvLayoutMode conv_layout_mode();

/// Widest SIMD path the blocked kernels can dispatch to on this host:
/// "avx512", "avx2" or "portable". Reported by RunReport so a bench JSON
/// records what the numbers were measured on.
const char* active_isa();

/// Optional epilogue of the fused forward form.
enum class Epilogue { kBias, kBiasLeakyReLU };

// --- accumulate forms (legacy signatures, used by tests) ----------------
// Semantics match the seed kernels exactly:
//   gemm_nn: C[M,N] += A[M,K]   * B[K,N]
//   gemm_tn: C[M,N] += A^T      * B[K,N]   (a stored [K, M])
//   gemm_nt: C[M,N] += A[M,K]   * B^T      (b stored [N, K])
void gemm_nn(int m, int n, int k, const float* a, const float* b, float* c);
void gemm_tn(int m, int n, int k, const float* a, const float* b, float* c);
void gemm_nt(int m, int n, int k, const float* a, const float* b, float* c);

// --- scratch-taking variants (the layers' hot path) ---------------------

/// C[M,N] += A^T[K,M] * B[K,N] — the dW accumulation form of backward.
void gemm_acc_tn(int m, int n, int k, const float* a, const float* b,
                 float* c, GemmScratch& scratch);

/// C[M,N] = A[M,K] * B[K,N] — overwrite form (dX / dCols of backward).
/// Bit-identical to accumulating into a zeroed C; the destination's prior
/// contents are ignored, so scratch buffers need no clearing.
void gemm_ovr_nn(int m, int n, int k, const float* a, const float* b,
                 float* c, GemmScratch& scratch);

/// Fused forward: C[M,N] = A[M,K] * B^T[N,K] + bias[N], optionally
/// followed by LeakyReLU. When `mask` is non-null it receives one byte
/// per output element: 1 where the pre-activation value was negative
/// (the backward mask), 0 otherwise. Bit-identical to the seed's
/// gemm_nt-into-zeroed-C followed by separate bias and activation loops.
void gemm_forward_nt(int m, int n, int k, const float* a, const float* b,
                     const float* bias, float* c, Epilogue epilogue,
                     float slope, std::uint8_t* mask, GemmScratch& scratch);

// --- transposed-activation forms (Conv2d's blocked pipeline) ------------
// Conv2d stores its im2col matrix transposed ([patch, rows]) and its
// output channel-major ([out, rows]): the GEMMs then stream huge-n full
// register panels and the NCHW reorders collapse to contiguous copies.
// These entries are blocked-only: the layer's reference path runs the
// seed pipeline on seed layouts instead, so a reference fallback here
// would never execute.

/// C[M,N] = A[M,K] * B[K,N] + bias[M] (per-ROW bias), optional LeakyReLU,
/// optional mask (layout [M, N]). Conv forward: A = weights [out, patch],
/// B = im2col^T [patch, rows], C = output [out, rows].
void gemm_forward_nn_rowbias(int m, int n, int k, const float* a,
                             const float* b, const float* bias, float* c,
                             Epilogue epilogue, float slope,
                             std::uint8_t* mask, GemmScratch& scratch);

/// C[M,N] += A[M,K] * B[K,N] — conv dW^T with transposed layouts:
/// A = im2col^T [patch, rows], B = dy row-major [rows, out],
/// C = dW^T staging [patch, out]. Both operands stream in place.
void gemm_acc_nn(int m, int n, int k, const float* a, const float* b,
                 float* c, GemmScratch& scratch);

/// C[M,N] += A[M,K] * B^T[N,K] — conv dW with transposed layouts:
/// A = dy^T [out, rows], B = im2col^T [patch, rows].
void gemm_acc_nt(int m, int n, int k, const float* a, const float* b,
                 float* c, GemmScratch& scratch);

/// C[M,N] = A^T[K,M] * B[K,N] — conv dX with transposed layouts:
/// A = weights [out, patch], B = dy^T [out, rows], C = dcols^T.
void gemm_ovr_tn(int m, int n, int k, const float* a, const float* b,
                 float* c, GemmScratch& scratch);

// --- fused im2col/col2im pack paths (Conv2d's blocked pipeline) ---------
// The residual im2col work folded into the GEMM pack step: one pass
// builds the transposed im2col matrix ([patch, rows], rows = (img, oy,
// ox)) straight from the input tensor in EITHER storage layout — the
// plane base offset is the only thing the layout changes, so a
// channel-major input packs with zero preceding transpose. Values and
// per-element visit order are identical for both layouts (bit-identity:
// packing moves bytes, never touches arithmetic). Bytes moved are
// counted on the `nn.pack_bytes` obs counter. The stride clamp for
// kernels wider than the input (`w < kx`) matches the im2col/col2im
// guard proven by test_kernels' one-pixel stride-3 cases.

/// cols[patch, rows] = im2col^T of x (logical [n, c_in, h, w], stored
/// per `x_layout`), patch = c_in*3*3, rows = n*ho*wo, 3x3 kernel.
void pack_cm_im2col(const float* x, Layout x_layout, int n, int c_in, int h,
                    int w, int stride, int ho, int wo, float* cols);

/// dx (logical [n, c_in, h, w], stored per `dx_layout`) += scatter of
/// dcols^T [patch, rows]; dx must be pre-zeroed. The per-element
/// accumulation order onto each dx element is independent of dx_layout
/// (same chain, different plane base), preserving bit-identity.
void pack_cm_col2im(const float* dcols, Layout dx_layout, int n, int c_in,
                    int h, int w, int stride, int ho, int wo, float* dx);

// --- retained reference kernels (seed implementations) ------------------
// The naive loops the optimized kernels are validated against; also the
// "before" side of bench_kernels.
namespace reference {
void gemm_nn(int m, int n, int k, const float* a, const float* b, float* c);
void gemm_tn(int m, int n, int k, const float* a, const float* b, float* c);
void gemm_nt(int m, int n, int k, const float* a, const float* b, float* c);
}  // namespace reference

}  // namespace sma::nn
